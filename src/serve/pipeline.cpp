#include "hbn/serve/pipeline.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "hbn/dynamic/harness.h"

namespace hbn::serve {
namespace {

/// Fill chunks per epoch: each chunk gets one arrival stamp, so an
/// epoch contributes up to this many latency samples. Small enough that
/// stamping is free, large enough that per-epoch p99 means something.
constexpr std::size_t kIngestChunks = 16;

}  // namespace

std::uint64_t EpochBatch::bufferBytes() const noexcept {
  return static_cast<std::uint64_t>(raw.capacity() + bucketed.capacity()) *
             sizeof(RequestEvent) +
         static_cast<std::uint64_t>(offsets.capacity()) *
             sizeof(std::size_t) +
         static_cast<std::uint64_t>(arrivals.capacity()) *
             sizeof(arrivals[0]);
}

EpochIngest::EpochIngest(RequestStream& stream, const net::Tree& tree,
                         int numObjects, std::size_t epochSize, bool threaded)
    : stream_(&stream),
      tree_(&tree),
      numObjects_(numObjects),
      epochSize_(epochSize),
      threaded_(threaded) {
  if (epochSize_ < 1) {
    throw std::invalid_argument("EpochIngest: epochSize >= 1");
  }
  const std::size_t slotCount = threaded_ ? 2 : 1;
  for (std::size_t s = 0; s < slotCount; ++s) {
    slots_[s].raw.resize(epochSize_);
    slots_[s].bucketed.resize(epochSize_);
    slots_[s].offsets.resize(static_cast<std::size_t>(numObjects_) + 1);
    slots_[s].arrivals.reserve(kIngestChunks);
  }
  if (threaded_) {
    worker_ = std::thread([this] { ingestLoop(); });
  }
}

EpochIngest::~EpochIngest() {
  if (threaded_) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    freeCv_.notify_all();
    worker_.join();
  }
}

void EpochIngest::fillBatch(EpochBatch& batch) {
  batch.n = 0;
  batch.arrivals.clear();
  const std::size_t chunk = std::max<std::size_t>(
      1, (epochSize_ + kIngestChunks - 1) / kIngestChunks);
  while (batch.n < epochSize_) {
    const std::size_t want = std::min(chunk, epochSize_ - batch.n);
    const std::size_t got = stream_->fill(
        std::span<RequestEvent>(batch.raw.data() + batch.n, want));
    if (got == 0) break;
    batch.arrivals.emplace_back(EpochBatch::Clock::now(), got);
    batch.n += got;
  }
  if (batch.n == 0) return;
  for (std::size_t i = 0; i < batch.n; ++i) {
    const RequestEvent& ev = batch.raw[i];
    if (ev.object < 0 || ev.object >= numObjects_) {
      throw std::out_of_range("EpochServer: request object out of range");
    }
    if (ev.origin < 0 || ev.origin >= tree_->nodeCount()) {
      throw std::out_of_range("EpochServer: request origin out of range");
    }
  }
  dynamic::bucketRequestsByObject(
      std::span<const RequestEvent>(batch.raw.data(), batch.n), numObjects_,
      batch.offsets,
      std::span<RequestEvent>(batch.bucketed.data(), batch.n));
}

void EpochIngest::ingestLoop() {
  for (;;) {
    std::size_t index;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      freeCv_.wait(lock, [this] {
        return stopping_ || state_[fillIndex_] == SlotState::Free;
      });
      if (stopping_) return;
      index = fillIndex_;
    }
    // Fill outside the lock: this is the whole point of the stage —
    // the consumer serves the other slot meanwhile.
    bool end = false;
    try {
      fillBatch(slots_[index]);
      end = slots_[index].n == 0;
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      error_ = std::current_exception();
      readyCv_.notify_all();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (end) {
        exhausted_ = true;
        readyCv_.notify_all();
        return;
      }
      state_[index] = SlotState::Ready;
      fillIndex_ = 1 - fillIndex_;
    }
    readyCv_.notify_all();
  }
}

EpochBatch* EpochIngest::acquire() {
  if (!threaded_) {
    EpochBatch& batch = slots_[0];
    fillBatch(batch);
    return batch.n == 0 ? nullptr : &batch;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  readyCv_.wait(lock, [this] {
    return error_ || exhausted_ || state_[serveIndex_] == SlotState::Ready;
  });
  if (state_[serveIndex_] == SlotState::Ready) {
    // Drain ready slots before reporting end-of-stream or an error: the
    // epochs before the failure point are valid either way.
    EpochBatch* batch = &slots_[serveIndex_];
    serveIndex_ = 1 - serveIndex_;
    return batch;
  }
  if (error_) std::rethrow_exception(error_);
  return nullptr;  // exhausted
}

void EpochIngest::release(EpochBatch* batch) {
  if (!threaded_ || batch == nullptr) return;
  const auto index = static_cast<std::size_t>(batch - slots_.data());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_[index] = SlotState::Free;
  }
  freeCv_.notify_all();
}

std::uint64_t EpochIngest::bufferBytes() const noexcept {
  const std::size_t slotCount = threaded_ ? 2 : 1;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < slotCount; ++s) {
    total += slots_[s].bufferBytes();
  }
  return total;
}

}  // namespace hbn::serve
