#include "hbn/serve/request_stream.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hbn::serve {

namespace {

[[noreturn]] void throwExhausted(std::uint64_t skipped, std::uint64_t count) {
  throw std::runtime_error(
      "skipRequests: stream exhausted after " + std::to_string(skipped) +
      " of " + std::to_string(count) +
      " events (checkpoint does not match this stream)");
}

}  // namespace

void RequestStream::skip(std::uint64_t count) {
  std::vector<RequestEvent> scratch(
      static_cast<std::size_t>(std::min<std::uint64_t>(count, 4096)));
  std::uint64_t skipped = 0;
  while (skipped < count) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(count - skipped, scratch.size()));
    const std::size_t got =
        fill(std::span<RequestEvent>(scratch.data(), want));
    if (got == 0) throwExhausted(skipped, count);
    skipped += got;
  }
}

GeneratorStream::GeneratorStream(std::function<RequestEvent()> generator,
                                 std::uint64_t total)
    : GeneratorStream(std::move(generator), total, nullptr) {}

GeneratorStream::GeneratorStream(std::function<RequestEvent()> generator,
                                 std::uint64_t total,
                                 std::function<void(std::uint64_t)> seek)
    : generator_(std::move(generator)),
      remaining_(total),
      seek_(std::move(seek)) {
  if (!generator_) {
    throw std::invalid_argument("GeneratorStream: null generator");
  }
}

std::size_t GeneratorStream::fill(std::span<RequestEvent> out) {
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining_, out.size()));
  for (std::size_t i = 0; i < n; ++i) out[i] = generator_();
  remaining_ -= n;
  consumed_ += n;
  return n;
}

void GeneratorStream::skip(std::uint64_t count) {
  if (!seek_) {
    RequestStream::skip(count);
    consumed_ += count;
    return;
  }
  if (count > remaining_) throwExhausted(remaining_, count);
  consumed_ += count;
  remaining_ -= count;
  seek_(consumed_);
}

TraceFileStream::TraceFileStream(const std::string& path) : in_(path) {
  if (!in_) {
    throw std::runtime_error("cannot open trace " + path);
  }
  reader_ = std::make_unique<workload::TraceReader>(in_);
}

std::size_t TraceFileStream::fill(std::span<RequestEvent> out) {
  std::size_t n = 0;
  while (n < out.size() && reader_->next(out[n])) ++n;
  return n;
}

std::size_t VectorStream::fill(std::span<RequestEvent> out) {
  const std::size_t n = std::min(out.size(), events_.size() - cursor_);
  std::copy(events_.begin() + static_cast<std::ptrdiff_t>(cursor_),
            events_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n),
            out.begin());
  cursor_ += n;
  return n;
}

void skipRequests(RequestStream& stream, std::uint64_t count) {
  stream.skip(count);
}

namespace {

template <typename Generator>
std::unique_ptr<RequestStream> wrapSeekable(const net::Tree& tree,
                                            const workload::StreamParams& params,
                                            std::uint64_t seed,
                                            std::uint64_t total) {
  auto gen = std::make_shared<Generator>(tree, params, seed);
  return std::make_unique<GeneratorStream>(
      [gen] { return gen->next(); }, total,
      [gen](std::uint64_t position) { gen->seek(position); });
}

}  // namespace

std::unique_ptr<RequestStream> makeGeneratedStream(
    const std::string& name, const net::Tree& tree,
    const workload::StreamParams& params, std::uint64_t seed,
    std::uint64_t total) {
  if (name == "skewed") {
    return wrapSeekable<workload::SkewedStream>(tree, params, seed, total);
  }
  if (name == "bursty") {
    return wrapSeekable<workload::BurstyStream>(tree, params, seed, total);
  }
  if (name == "diurnal") {
    return wrapSeekable<workload::DiurnalStream>(tree, params, seed, total);
  }
  if (name == "phase-shift") {
    return wrapSeekable<workload::PhaseShiftStream>(tree, params, seed,
                                                    total);
  }
  throw std::invalid_argument(
      "unknown stream '" + name +
      "'; available: skewed bursty diurnal phase-shift");
}

}  // namespace hbn::serve
