// Built-in strategy adapters: every placement algorithm of the library
// registered under a stable name. Per-object strategies run through the
// ParallelExecutor with per-thread scratch; stochastic strategies derive
// one RNG stream per object from the Context seed, so every strategy's
// output is reproducible and independent of the thread count.
#include <memory>
#include <utility>

#include "hbn/baseline/exact.h"
#include "hbn/baseline/heuristics.h"
#include "hbn/core/extended_nibble.h"
#include "hbn/core/nibble.h"
#include "hbn/core/placement.h"
#include "hbn/engine/parallel_executor.h"
#include "hbn/engine/registry.h"
#include "hbn/util/rng.h"

namespace hbn::engine {
namespace {

/// Generic adapter: a canonical name plus a placement function.
class LambdaStrategy final : public PlacementStrategy {
 public:
  using Fn = std::function<core::Placement(
      const net::Tree&, const workload::Workload&, Context&)>;

  LambdaStrategy(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] core::Placement place(const net::Tree& tree,
                                      const workload::Workload& load,
                                      Context& ctx) const override {
    // Context promises "diagnostics of the last place() call" — drop any
    // stale keys an earlier strategy deposited in a reused Context.
    ctx.metrics.clear();
    return fn_(tree, load, ctx);
  }

 private:
  std::string name_;
  Fn fn_;
};

std::unique_ptr<PlacementStrategy> makeLambda(std::string name,
                                              LambdaStrategy::Fn fn) {
  return std::make_unique<LambdaStrategy>(std::move(name), std::move(fn));
}

/// Independent per-object RNG stream: mixing the object id into the seed
/// keeps the draw sequence of object x identical no matter which worker
/// thread places it.
util::Rng objectRng(std::uint64_t seed, workload::ObjectId x) {
  std::uint64_t state =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(x) + 1);
  return util::Rng(util::splitmix64(state));
}

core::Placement placeNibble(const net::Tree& tree,
                            const workload::Workload& load, Context& ctx) {
  ParallelExecutor executor(ctx.threads);
  return executor.placeObjects<core::NibbleScratch>(
      load.numObjects(),
      [&](workload::ObjectId x, core::NibbleScratch& scratch) {
        core::NibbleObjectResult one;
        core::nibbleObjectInto(tree, load, x, scratch, one);
        return std::move(one.placement);
      });
}

std::unique_ptr<PlacementStrategy> makeExtendedNibble(
    StrategyOptions& options) {
  core::ExtendedNibbleOptions base;
  base.runDeletion = options.getBool("deletion", true);
  base.accFactor = options.getInt("acc", 2);
  return makeLambda(
      "extended-nibble",
      [base](const net::Tree& tree, const workload::Workload& load,
             Context& ctx) {
        core::ExtendedNibbleOptions opts = base;
        opts.threads = ctx.threads;
        core::ExtendedNibbleResult result =
            core::extendedNibble(tree, load, opts);
        ctx.metrics["congestion.nibble"] = result.report.congestionNibble;
        ctx.metrics["congestion.modified"] = result.report.congestionModified;
        ctx.metrics["congestion.final"] = result.report.congestionFinal;
        ctx.metrics["mapping.forcedMoves"] =
            static_cast<double>(result.report.mapping.forcedMoves);
        ctx.metrics["mapping.tauMax"] =
            static_cast<double>(result.report.mapping.tauMax);
        ctx.metrics["deletion.copiesDeleted"] =
            static_cast<double>(result.report.deletion.copiesDeleted);
        return std::move(result.final);
      });
}

std::unique_ptr<PlacementStrategy> makeRandomSingleCopy(StrategyOptions&) {
  return makeLambda(
      "random-single-copy",
      [](const net::Tree& tree, const workload::Workload& load,
         Context& ctx) {
        const std::span<const net::NodeId> processors = tree.processors();
        ParallelExecutor executor(ctx.threads);
        struct NoScratch {};
        const std::uint64_t seed = ctx.seed;
        return executor.placeObjects<NoScratch>(
            load.numObjects(), [&](workload::ObjectId x, NoScratch&) {
              util::Rng rng = objectRng(seed, x);
              const net::NodeId leaf = processors[static_cast<std::size_t>(
                  rng.nextBelow(processors.size()))];
              return core::makeNearestPlacement(tree, load, x,
                                                std::span(&leaf, 1));
            });
      });
}

std::unique_ptr<PlacementStrategy> makeExact(StrategyOptions& options) {
  baseline::ExactOptions exact;
  exact.maxCopiesPerObject =
      static_cast<int>(options.getInt("max-copies", exact.maxCopiesPerObject));
  exact.nodeBudget = options.getInt("budget", exact.nodeBudget);
  return makeLambda("exact",
                    [exact](const net::Tree& tree,
                            const workload::Workload& load, Context& ctx) {
                      baseline::ExactResult result =
                          baseline::solveExact(tree, load, exact);
                      ctx.metrics["exact.congestion"] = result.congestion;
                      ctx.metrics["exact.provedOptimal"] =
                          result.provedOptimal ? 1.0 : 0.0;
                      ctx.metrics["exact.nodesExplored"] =
                          static_cast<double>(result.nodesExplored);
                      return std::move(result.placement);
                    });
}

std::unique_ptr<PlacementStrategy> makeLocalSearch(StrategyOptions& options) {
  baseline::LocalSearchOptions search;
  search.maxIterations =
      static_cast<int>(options.getInt("iters", search.maxIterations));
  search.proposalsPerIteration = static_cast<int>(
      options.getInt("proposals", search.proposalsPerIteration));
  const std::string initSpec =
      options.getString("init", "best-single-copy");
  return makeLambda(
      "local-search",
      [search, initSpec](const net::Tree& tree,
                         const workload::Workload& load, Context& ctx) {
        const std::unique_ptr<PlacementStrategy> init =
            StrategyRegistry::global().create(initSpec);
        const core::Placement start = init->place(tree, load, ctx);
        util::Rng rng(ctx.seed);
        core::Placement refined =
            baseline::localSearch(tree, load, start, rng, search);
        // The init strategy's diagnostics describe `start`, not the
        // placement returned here — drop them rather than misattribute.
        ctx.metrics.clear();
        return refined;
      });
}

}  // namespace

namespace detail {

void registerBuiltins(StrategyRegistry& registry) {
  registry.add(
      {"nibble",
       "FOCS'97 nibble placement (per-object optimal edge loads; copies may "
       "sit on buses)",
       ""},
      [](StrategyOptions&) { return makeLambda("nibble", placeNibble); });

  registry.add(
      {"extended-nibble",
       "the paper's 7-approximation: nibble + deletion + leaf mapping",
       "deletion=0|1,acc=N"},
      makeExtendedNibble);

  registry.add(
      {"best-single-copy",
       "congestion-aware greedy baseline: one copy per object on the leaf "
       "minimising running congestion",
       ""},
      [](StrategyOptions&) {
        return makeLambda("best-single-copy",
                          [](const net::Tree& tree,
                             const workload::Workload& load, Context&) {
                            return baseline::bestSingleCopy(tree, load);
                          });
      },
      {"greedy"});

  registry.add(
      {"weighted-median",
       "total-load baseline: one copy per object at its weighted tree "
       "median",
       ""},
      [](StrategyOptions&) {
        return makeLambda("weighted-median",
                          [](const net::Tree& tree,
                             const workload::Workload& load, Context&) {
                            return baseline::weightedMedian(tree, load);
                          });
      },
      {"median"});

  registry.add(
      {"random-single-copy",
       "one copy per object on a seed-derived uniformly random processor",
       ""},
      makeRandomSingleCopy, {"random"});

  registry.add(
      {"full-replication",
       "a copy of every object on every processor (reads free, writes "
       "broadcast)",
       ""},
      [](StrategyOptions&) {
        return makeLambda("full-replication",
                          [](const net::Tree& tree,
                             const workload::Workload& load, Context&) {
                            return baseline::fullReplication(tree, load);
                          });
      });

  registry.add(
      {"exact",
       "branch-and-bound congestion minimisation (small instances only)",
       "max-copies=N,budget=N"},
      makeExact);

  registry.add(
      {"local-search",
       "hill-climbing refinement of another strategy's placement",
       "iters=N,proposals=N,init=SPEC"},
      makeLocalSearch);
}

}  // namespace detail
}  // namespace hbn::engine
