#include "hbn/engine/registry.h"

#include <sstream>
#include <stdexcept>

namespace hbn::engine {

SpecParts splitSpec(std::string_view spec) noexcept {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) return {spec, {}};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

StrategyOptions StrategyOptions::parse(std::string_view spec) {
  StrategyOptions options;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("option '" + std::string(item) +
                                  "' is not of the form key=value");
    }
    std::string key(item.substr(0, eq));
    if (options.entries_.count(key) != 0) {
      throw std::invalid_argument(
          "duplicate option '" + key +
          "' (each key may appear once per spec)");
    }
    options.entries_[std::move(key)] =
        Entry{std::string(item.substr(eq + 1)), false};
  }
  return options;
}

bool StrategyOptions::has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::string StrategyOptions::getString(std::string_view key,
                                       std::string_view fallback) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::string(fallback);
  it->second.consumed = true;
  return it->second.value;
}

std::int64_t StrategyOptions::getInt(std::string_view key,
                                     std::int64_t fallback) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(it->second.value, &used);
    if (used != it->second.value.size()) throw std::invalid_argument("");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("option " + std::string(key) + "=" +
                                it->second.value + " is not an integer");
  }
}

bool StrategyOptions::getBool(std::string_view key, bool fallback) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  it->second.consumed = true;
  const std::string& v = it->second.value;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("option " + std::string(key) + "=" + v +
                              " is not a boolean");
}

void StrategyOptions::throwIfUnconsumed(std::string_view ownerName) const {
  for (const auto& [key, entry] : entries_) {
    if (!entry.consumed) {
      throw std::invalid_argument("'" + std::string(ownerName) +
                                  "' does not understand option '" + key +
                                  "'");
    }
  }
}

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    detail::registerBuiltins(*r);
    return r;
  }();
  return *registry;
}

std::string StrategyRegistry::helpText() const {
  return formatSpecHelp(list());
}

}  // namespace hbn::engine
