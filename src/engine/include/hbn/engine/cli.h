// Shared command-line vocabulary of every strategy-driven frontend:
//     --strategy SPEC[,SPEC...]   (repeatable; registry spec syntax)
//     --threads N                 (0 = hardware concurrency)
//     --seed N
//     --help
// hbn_place and the benchmarks parse these through one helper, so adding
// an engine-level knob is a single change and no frontend grows its own
// string→strategy dispatch again.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hbn/engine/strategy.h"

namespace hbn::engine {

struct CliOptions {
  std::vector<std::string> strategies;  ///< empty = frontend default
  int threads = 1;
  std::uint64_t seed = 0;
  bool seedSet = false;
  bool help = false;
  std::vector<std::string> positional;  ///< non-flag arguments, in order
};

/// Parses argv (excluding argv[0]). Throws std::invalid_argument on
/// malformed or unknown `--` flags.
[[nodiscard]] CliOptions parseCli(int argc, char** argv);

/// Strict non-negative integer flag parser shared by every frontend:
/// digits only (no sign, whitespace, or trailing garbage — `12x` is an
/// error, not 12), overflow and values above `max` rejected with errors
/// naming `flag`, the limit, and the offending text. Returns the value.
[[nodiscard]] std::uint64_t parseUintFlag(
    const std::string& flag, const std::string& text,
    std::uint64_t max = UINT64_MAX);

/// Help block describing the shared flags plus the registered strategies.
[[nodiscard]] std::string cliHelp();

/// Builds an execution Context from parsed options; `defaultSeed` is used
/// when no --seed was given.
[[nodiscard]] Context makeContext(const CliOptions& options,
                                  std::uint64_t defaultSeed);

/// For frontends that take no positional arguments (the benches): throws
/// std::invalid_argument naming the first stray argument, so typos are
/// loud instead of silently ignored.
void requireNoPositional(const CliOptions& options);

}  // namespace hbn::engine
