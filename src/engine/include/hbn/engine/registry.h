// Name→factory registry for placement strategies.
//
// A strategy is selected by a spec string `name[:key=value,...]`, e.g.
//     extended-nibble
//     extended-nibble:deletion=0,acc=3
//     local-search:iters=500,init=weighted-median
// Unknown names list the alternatives; unknown option keys are an error
// (every factory consumes exactly the keys it understands). Tools and
// benchmarks derive their --strategy help text from the registry, so a
// new strategy is a single registration away from every frontend.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "hbn/engine/strategy.h"

namespace hbn::engine {

/// Parsed `key=value,...` options with consumption tracking: factories
/// pull the keys they understand; create() rejects leftovers. Shared by
/// StrategyRegistry and ExperimentRegistry, so strategy and experiment
/// specs have one syntax and one error vocabulary.
class StrategyOptions {
 public:
  static StrategyOptions parse(std::string_view spec);

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::string getString(std::string_view key,
                                      std::string_view fallback);
  [[nodiscard]] std::int64_t getInt(std::string_view key,
                                    std::int64_t fallback);
  [[nodiscard]] bool getBool(std::string_view key, bool fallback);

  /// Throws std::invalid_argument naming any key no getter consumed.
  void throwIfUnconsumed(std::string_view ownerName) const;

 private:
  struct Entry {
    std::string value;
    bool consumed = false;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Registry metadata shown in --help / usage text.
struct StrategyInfo {
  std::string name;         ///< canonical name
  std::string summary;      ///< one-line description
  std::string optionsHelp;  ///< "iters=N,init=SPEC" style, may be empty
};

/// A spec string `name[:key=value,...]` split into its halves — THE
/// parsing point every registry goes through (StrategyRegistry,
/// ExperimentRegistry, dynamic::OnlinePolicyRegistry), so the spec
/// grammar cannot drift between surfaces. Nested specs pass through
/// unharmed: in `static:placement=extended-nibble:deletion=0` the outer
/// split stops at the first colon and StrategyOptions keeps the value
/// `extended-nibble:deletion=0` intact for the inner registry. (Note
/// nested specs cannot carry commas of their own — the outer option
/// list splits on them first.)
struct SpecParts {
  std::string_view name;
  std::string_view options;  ///< text after the first ':', may be empty
};
[[nodiscard]] SpecParts splitSpec(std::string_view spec) noexcept;

/// Shared --help / --list rendering for any registry Info that carries
/// name/summary/optionsHelp.
template <typename Info>
[[nodiscard]] std::string formatSpecHelp(const std::vector<Info>& infos) {
  std::ostringstream oss;
  for (const Info& info : infos) {
    oss << "  " << info.name;
    if (!info.optionsHelp.empty()) oss << "[:" << info.optionsHelp << "]";
    oss << "\n      " << info.summary << "\n";
  }
  return oss.str();
}

/// Shared name→factory machinery behind StrategyRegistry and
/// ExperimentRegistry (experiment.h): canonical names plus aliases, spec
/// strings `name[:key=value,...]`, unknown names listing the
/// alternatives, and unconsumed option keys rejected after the factory
/// ran. `kind` ("strategy", "experiment") only flavours the error
/// messages. Info must be an aggregate with a `name` member.
template <typename Product, typename Info>
class SpecRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Product>(StrategyOptions&)>;

  /// Registers a product under its canonical name plus aliases.
  void add(Info info, Factory factory,
           std::vector<std::string> aliases = {}) {
    const std::string canonical = info.name;
    if (entries_.count(canonical) != 0) {
      throw std::logic_error(kind_ + " '" + canonical +
                             "' already registered");
    }
    entries_[canonical] =
        Registered{std::move(info), factory, false, canonical};
    for (std::string& alias : aliases) {
      if (entries_.count(alias) != 0) {
        throw std::logic_error(kind_ + " alias '" + alias +
                               "' already registered");
      }
      entries_[std::move(alias)] = Registered{{}, factory, true, canonical};
    }
  }

  /// Instantiates from a spec string `name[:options]`. Throws
  /// std::invalid_argument for unknown names or unconsumed options.
  [[nodiscard]] std::unique_ptr<Product> create(std::string_view spec) const {
    const SpecParts parts = splitSpec(spec);
    const std::string_view name = parts.name;
    const std::string_view optionText = parts.options;
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::ostringstream oss;
      oss << "unknown " << kind_ << " '" << name << "'; available:";
      for (const std::string& known : names()) oss << ' ' << known;
      throw std::invalid_argument(oss.str());
    }
    StrategyOptions options = StrategyOptions::parse(optionText);
    std::unique_ptr<Product> product = it->second.factory(options);
    options.throwIfUnconsumed(it->second.canonical);
    return product;
  }

  /// Canonical names, sorted; aliases are omitted.
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    for (const auto& [name, entry] : entries_) {
      if (!entry.isAlias) out.push_back(name);
    }
    return out;
  }

  /// Info records for all canonical names, sorted by name.
  [[nodiscard]] std::vector<Info> list() const {
    std::vector<Info> out;
    for (const auto& [name, entry] : entries_) {
      if (!entry.isAlias) out.push_back(entry.info);
    }
    return out;
  }

 protected:
  explicit SpecRegistry(std::string kind) : kind_(std::move(kind)) {}

 private:
  struct Registered {
    Info info;
    Factory factory;
    bool isAlias = false;
    std::string canonical;
  };
  std::string kind_;
  std::map<std::string, Registered, std::less<>> entries_;
};

class StrategyRegistry
    : public SpecRegistry<PlacementStrategy, StrategyInfo> {
 public:
  StrategyRegistry() : SpecRegistry("strategy") {}

  /// The process-wide registry, pre-populated with every built-in
  /// strategy.
  [[nodiscard]] static StrategyRegistry& global();

  /// Multi-line help text enumerating strategies and their options.
  [[nodiscard]] std::string helpText() const;
};

namespace detail {
/// Implemented in strategies.cpp; wires every built-in strategy into the
/// registry that StrategyRegistry::global() hands out.
void registerBuiltins(StrategyRegistry& registry);
}  // namespace detail

}  // namespace hbn::engine
