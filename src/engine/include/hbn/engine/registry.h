// Name→factory registry for placement strategies.
//
// A strategy is selected by a spec string `name[:key=value,...]`, e.g.
//     extended-nibble
//     extended-nibble:deletion=0,acc=3
//     local-search:iters=500,init=weighted-median
// Unknown names list the alternatives; unknown option keys are an error
// (every factory consumes exactly the keys it understands). Tools and
// benchmarks derive their --strategy help text from the registry, so a
// new strategy is a single registration away from every frontend.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hbn/engine/strategy.h"

namespace hbn::engine {

/// Parsed `key=value,...` options with consumption tracking: factories
/// pull the keys they understand; create() rejects leftovers.
class StrategyOptions {
 public:
  static StrategyOptions parse(std::string_view spec);

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::string getString(std::string_view key,
                                      std::string_view fallback);
  [[nodiscard]] std::int64_t getInt(std::string_view key,
                                    std::int64_t fallback);
  [[nodiscard]] bool getBool(std::string_view key, bool fallback);

  /// Throws std::invalid_argument naming any key no getter consumed.
  void throwIfUnconsumed(std::string_view strategyName) const;

 private:
  struct Entry {
    std::string value;
    bool consumed = false;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Registry metadata shown in --help / usage text.
struct StrategyInfo {
  std::string name;         ///< canonical name
  std::string summary;      ///< one-line description
  std::string optionsHelp;  ///< "iters=N,init=SPEC" style, may be empty
};

class StrategyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<PlacementStrategy>(StrategyOptions&)>;

  /// The process-wide registry, pre-populated with every built-in
  /// strategy.
  [[nodiscard]] static StrategyRegistry& global();

  /// Registers a strategy under its canonical name plus aliases.
  void add(StrategyInfo info, Factory factory,
           std::vector<std::string> aliases = {});

  /// Instantiates from a spec string `name[:options]`. Throws
  /// std::invalid_argument for unknown names or unconsumed options.
  [[nodiscard]] std::unique_ptr<PlacementStrategy> create(
      std::string_view spec) const;

  /// Canonical names, sorted; aliases are omitted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Info records for all canonical names, sorted by name.
  [[nodiscard]] std::vector<StrategyInfo> list() const;

  /// Multi-line help text enumerating strategies and their options.
  [[nodiscard]] std::string helpText() const;

 private:
  struct Registered {
    StrategyInfo info;
    Factory factory;
    bool isAlias = false;
    std::string canonical;
  };
  std::map<std::string, Registered, std::less<>> entries_;
};

namespace detail {
/// Implemented in strategies.cpp; wires every built-in strategy into the
/// registry that StrategyRegistry::global() hands out.
void registerBuiltins(StrategyRegistry& registry);
}  // namespace detail

}  // namespace hbn::engine
