// Object-sharded parallel executor for per-object placement strategies.
//
// The paper's algorithms place each object independently in O(|V|), so a
// production engine shards the object range over a std::thread pool. The
// executor owns the two ingredients that make this fast *and*
// deterministic:
//   * per-thread scratch state (e.g. core::NibbleScratch), constructed
//     once per worker and reused for every object of its stripe, so the
//     hot path performs no per-object allocation;
//   * a deterministic merge: each object writes only its own preallocated
//     slot, so the assembled Placement is bit-identical for 1 vs N threads.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "hbn/core/parallel.h"
#include "hbn/core/placement.h"

namespace hbn::engine {

class ParallelExecutor {
 public:
  /// `threads`: worker budget; 0 = hardware concurrency.
  explicit ParallelExecutor(int threads = 1) : threads_(threads) {}

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Runs fn(x, scratch) for every object id x in [0, numObjects), where
  /// `scratch` is the invoking worker's instance of Scratch (default-
  /// constructed once per worker). fn must write results only into
  /// object-x-owned slots.
  template <typename Scratch, typename Fn>
  void forEachObject(int numObjects, Fn&& fn) const {
    const int workers = core::resolveWorkerCount(threads_, numObjects);
    std::vector<Scratch> scratch(static_cast<std::size_t>(workers));
    core::parallelForObjects(numObjects, workers,
                             [&](workload::ObjectId x, int worker) {
                               fn(x, scratch[static_cast<std::size_t>(worker)]);
                             });
  }

  /// Assembles a Placement by evaluating one ObjectPlacement per object.
  /// fn(x, scratch) returns object x's placement; slots are preallocated
  /// and the merge is position-based, hence thread-count independent.
  template <typename Scratch, typename Fn>
  [[nodiscard]] core::Placement placeObjects(int numObjects, Fn&& fn) const {
    core::Placement placement;
    placement.objects.resize(static_cast<std::size_t>(numObjects));
    forEachObject<Scratch>(numObjects,
                           [&](workload::ObjectId x, Scratch& scratch) {
                             placement.objects[static_cast<std::size_t>(x)] =
                                 fn(x, scratch);
                           });
    return placement;
  }

 private:
  int threads_;
};

}  // namespace hbn::engine
