// The unified strategy engine: every placement algorithm in the library —
// the paper's nibble and extended-nibble, the baselines, the exact solver
// — is exposed through one abstract interface so that tools, benchmarks,
// and future online wrappers select strategies by name instead of
// hand-rolled dispatch, and so that the object-sharded parallel executor
// can drive any of them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "hbn/core/placement.h"
#include "hbn/net/tree.h"
#include "hbn/workload/workload.h"

namespace hbn::engine {

/// Per-invocation execution context. The engine owns everything that is
/// *not* part of a strategy's identity: the RNG seed for stochastic
/// strategies (derived per object, so results are thread-count
/// independent), the worker-thread budget, and a diagnostics channel that
/// strategies may fill with algorithm-specific metrics (congestion per
/// pipeline stage, forced moves, ...) for benchmark harnesses.
struct Context {
  /// Seed for stochastic strategies; deterministic per-object streams are
  /// derived from it, so a given (seed, strategy) pair is reproducible.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Worker threads for object-sharded strategies; 0 = hardware
  /// concurrency. The placement is bit-identical for any value.
  int threads = 1;
  /// Diagnostics deposited by the last place() call (strategy-specific
  /// keys such as "congestion.nibble" or "mapping.forcedMoves").
  std::map<std::string, double> metrics;
};

/// Abstract placement strategy: a name and a pure tree+workload→placement
/// map. Implementations must be safe to reuse across place() calls and
/// must derive all randomness from the Context seed.
///
/// Strategies are instantiated by spec string through StrategyRegistry
/// (registry.h) and measured by the experiment harness (experiment.h),
/// whose Experiment interface is this class's benchmark-side twin: a
/// strategy computes one placement, an experiment sweeps strategies or
/// pipeline stages over instance grids and emits the BENCH_*.json
/// trajectory. docs/architecture.md shows where both sit in the layer
/// diagram.
class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  /// Canonical registry name (e.g. "extended-nibble").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Computes the placement of every object of `load` on `tree`.
  [[nodiscard]] virtual core::Placement place(const net::Tree& tree,
                                              const workload::Workload& load,
                                              Context& ctx) const = 0;
};

}  // namespace hbn::engine
