// The unified experiment harness: every benchmark in the repository — the
// paper's congestion-ratio, runtime-scaling, distributed-round and
// ablation studies — is exposed through one abstract interface so that a
// single driver (`hbn_bench`) can list, select, and run any of them, and
// so that every run emits the same schema-versioned machine-readable
// record file (`BENCH_<experiment>.json`) for the cross-PR perf
// trajectory.
//
// The layer deliberately mirrors the strategy engine one directory over:
//   PlacementStrategy : StrategyRegistry  ==  Experiment : ExperimentRegistry
// and reuses StrategyOptions, so experiment specs share the exact
// `name[:key=value,...]` syntax of strategy specs (`runtime:reps=5`).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hbn/engine/registry.h"
#include "hbn/util/json.h"
#include "hbn/util/stats.h"

namespace hbn::engine {

/// Per-run execution context handed to Experiment::run(). Owns everything
/// that is not part of an experiment's identity: the RNG seed, the
/// worker-thread budget forwarded into strategy Contexts, the smoke/full
/// scale switch, optional strategy-spec overrides for comparative
/// experiments, and the stream human-readable tables go to.
struct ExperimentContext {
  std::uint64_t seed = 0;  ///< meaningful only when seedSet
  bool seedSet = false;
  int threads = 1;  ///< worker threads; 0 = hardware concurrency
  /// Smoke mode runs the same code paths at a fraction of the trial
  /// budget so the full suite fits a CI minute; see trials().
  bool smoke = false;
  /// Non-empty overrides the experiment's default strategy set
  /// (experiments that compare strategies honour it; others ignore it).
  std::vector<std::string> strategies;
  /// Destination for human-readable tables; nullptr discards them.
  std::ostream* out = nullptr;

  /// The seed this run actually uses: --seed when given, otherwise the
  /// experiment's deterministic default. Records the choice in `seed`,
  /// so the summary record reports the effective seed — replaying with
  /// `--seed <summary.seed>` reproduces the rows exactly.
  [[nodiscard]] std::uint64_t resolveSeed(std::uint64_t fallback) {
    if (!seedSet) {
      seed = fallback;
      seedSet = true;
    }
    return seed;
  }
  /// Scales a full-resolution trial count down in smoke mode (>= 2 so
  /// accumulator statistics stay meaningful).
  [[nodiscard]] int trials(int full) const;
  /// The table stream: *out, or a sink that discards everything.
  [[nodiscard]] std::ostream& os() const;
};

/// Collects an experiment's measurements and writes the schema-versioned
/// `BENCH_<experiment>.json` trajectory file.
///
/// The file is a flat-record JSON array (util::JsonRecords). Every record
/// carries `schema_version`, `experiment`, and `kind`; measurement rows
/// use kind="row" with experiment-specific fields, and writeFile()
/// appends one kind="summary" record holding the run parameters (seed,
/// threads, mode), the machine spec (host, os, cpus, compiler), wall-
/// clock percentiles over all addTiming() samples, and the pass/fail
/// verdict of the experiment's paper-claim checks.
class BenchReporter {
 public:
  /// Bump when record fields change incompatibly; consumers of the perf
  /// trajectory filter on it.
  static constexpr int kSchemaVersion = 1;

  explicit BenchReporter(std::string experimentName);

  /// Starts a measurement record (kind="row" unless overridden);
  /// subsequent field() calls attach to it.
  void beginRow(std::string_view kind = "row");

  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value) {
    field(key, std::string_view(value));
  }
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, int value) {
    field(key, static_cast<std::int64_t>(value));
  }
  void field(std::string_view key, double value);
  void field(std::string_view key, bool value);

  /// Emits `<prefix>_mean/_p50/_p90/_min/_max` fields into the current
  /// record (all null when the accumulator is empty).
  void summary(std::string_view prefix, const util::Accumulator& acc);

  /// Feeds one wall-clock sample (milliseconds) into the run-level
  /// percentiles reported by the summary record.
  void addTiming(double wallMs) { wallMs_.add(wallMs); }

  [[nodiscard]] const std::string& experiment() const noexcept {
    return name_;
  }
  [[nodiscard]] std::size_t rowCount() const noexcept {
    return records_.recordCount();
  }

  /// Appends the summary record and writes `<dir>/BENCH_<experiment>.json`.
  /// Returns the path written. `dir` empty means the current directory.
  std::string writeFile(const std::string& dir, const ExperimentContext& ctx,
                        bool passed);

 private:
  std::string name_;
  util::JsonRecords records_;
  util::Accumulator wallMs_;
};

/// Abstract experiment: a registry name plus a run() that prints its
/// human tables to ctx.os(), deposits one reporter row per measurement,
/// and returns whether every paper claim it checks actually held (the
/// process exit code of `hbn_bench` aggregates these).
///
/// Implementations must derive all randomness from ctx.resolveSeed(...) so a
/// given (seed, experiment) pair is reproducible, and must scale their
/// trial budgets through ctx.trials() so smoke mode stays fast.
class Experiment {
 public:
  virtual ~Experiment() = default;

  /// Canonical registry name (e.g. "approx-ratio").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Runs the experiment. Returns false when a checked claim failed.
  [[nodiscard]] virtual bool run(ExperimentContext& ctx,
                                 BenchReporter& reporter) const = 0;
};

/// Registry metadata shown by `hbn_bench --list` and --help.
struct ExperimentInfo {
  std::string name;      ///< canonical name
  std::string summary;   ///< one-line description
  std::string paperRef;  ///< paper anchor, e.g. "E1 / Theorem 4.3"
  std::string optionsHelp;  ///< "reps=N" style, may be empty
};

/// Name→factory registry for experiments; the experiment twin of
/// StrategyRegistry, sharing the SpecRegistry machinery, spec syntax,
/// and option parser.
class ExperimentRegistry : public SpecRegistry<Experiment, ExperimentInfo> {
 public:
  ExperimentRegistry() : SpecRegistry("experiment") {}

  /// The process-wide registry. Unlike StrategyRegistry::global() it
  /// starts empty: experiment implementations live in the bench library,
  /// which populates it via hbn::bench::experiments().
  [[nodiscard]] static ExperimentRegistry& global();

  /// Multi-line help text enumerating experiments and their options.
  [[nodiscard]] std::string helpText() const;
};

/// The `hbn_bench` command-line driver, also reachable through
/// `hbn_place --bench`: --list, --suite=smoke|full, explicit experiment
/// specs, shared --seed/--threads/--strategy flags, --out DIR for the
/// JSON files. Returns the process exit code (0 iff every selected
/// experiment's claims held).
int runBenchCli(const ExperimentRegistry& registry, int argc, char** argv);

}  // namespace hbn::engine
