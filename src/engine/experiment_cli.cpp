// Command-line driver behind `hbn_bench` (and `hbn_place --bench`):
// bench-specific flags are peeled off here, everything else goes through
// the shared engine::parseCli so --strategy/--threads/--seed behave
// identically across every frontend.
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "hbn/engine/cli.h"
#include "hbn/engine/experiment.h"
#include "hbn/util/table.h"
#include "hbn/util/timer.h"

namespace hbn::engine {
namespace {

struct BenchCli {
  bool list = false;
  std::string suite;   ///< "" = none; otherwise smoke|full
  std::string outDir;  ///< "" = current directory
  CliOptions shared;   ///< the flags every strategy frontend understands
};

/// Splits bench-only flags out of argv, then hands the remainder to the
/// shared parser. Throws std::invalid_argument on malformed input.
BenchCli parseBenchCli(int argc, char** argv) {
  BenchCli cli;
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(flag + " expects a value");
      }
      return argv[++i];
    };
    if (arg == "--list" || arg == "-l") {
      cli.list = true;
    } else if (arg == "--suite") {
      cli.suite = value(arg);
    } else if (arg.rfind("--suite=", 0) == 0) {
      cli.suite = arg.substr(std::string("--suite=").size());
    } else if (arg == "--out" || arg == "-o") {
      cli.outDir = value(arg);
    } else if (arg.rfind("--out=", 0) == 0) {
      cli.outDir = arg.substr(std::string("--out=").size());
    } else {
      rest.push_back(argv[i]);
    }
  }
  cli.shared = parseCli(static_cast<int>(rest.size()), rest.data());
  return cli;
}

void printUsage(std::ostream& os, const ExperimentRegistry& registry) {
  os << "usage: hbn_bench [options] [EXPERIMENT[:key=value,...] ...]\n"
        "\n"
        "Runs the paper's experiments through the unified harness; every\n"
        "run writes a schema-versioned BENCH_<experiment>.json next to its\n"
        "human-readable tables.\n"
        "\n"
        "options:\n"
        "  --list            list registered experiments and exit\n"
        "  --suite NAME      run every experiment: 'smoke' (reduced trial\n"
        "                    budget, CI-sized) or 'full'\n"
        "  --out DIR         directory for BENCH_*.json (default: .)\n"
        "  --strategy SPEC   strategy override for comparative experiments\n"
        "                    (repeatable; name[:key=value,...])\n"
        "  --threads N       worker threads (0 = all cores)\n"
        "  --seed N          RNG seed override\n"
        "  --help            show this text\n"
        "\n"
        "experiments:\n"
     << registry.helpText();
}

}  // namespace

int runBenchCli(const ExperimentRegistry& registry, int argc, char** argv) {
  try {
    const BenchCli cli = parseBenchCli(argc, argv);
    if (cli.shared.help) {
      printUsage(std::cout, registry);
      return 0;
    }
    if (cli.list) {
      util::Table table({"experiment", "paper ref", "summary"});
      for (const ExperimentInfo& info : registry.list()) {
        table.addRow({info.name, info.paperRef, info.summary});
      }
      table.print(std::cout);
      std::cout << "\n" << table.rowCount()
                << " experiments; run one with `hbn_bench NAME`, all with "
                   "`hbn_bench --suite=smoke|full`\n";
      return 0;
    }

    std::vector<std::string> specs = cli.shared.positional;
    bool smoke = false;
    if (!cli.suite.empty()) {
      if (!specs.empty()) {
        throw std::invalid_argument(
            "--suite runs every experiment; drop the explicit experiment "
            "names");
      }
      if (cli.suite == "smoke") {
        smoke = true;
      } else if (cli.suite != "full") {
        throw std::invalid_argument("unknown suite '" + cli.suite +
                                    "'; available: smoke full");
      }
      specs = registry.names();
    }
    if (specs.empty()) {
      printUsage(std::cerr, registry);
      return 2;
    }

    bool allPassed = true;
    for (const std::string& spec : specs) {
      // One experiment failing — a bad option, a strategy override it
      // cannot honour, a thrown claim check — must not abort the rest of
      // a suite run: mark it FAIL, keep its partial JSON, move on.
      try {
        const std::unique_ptr<Experiment> experiment = registry.create(spec);
        ExperimentContext ctx;
        ctx.seed = cli.shared.seed;
        ctx.seedSet = cli.shared.seedSet;
        ctx.threads = cli.shared.threads;
        ctx.smoke = smoke;
        ctx.strategies = cli.shared.strategies;
        ctx.out = &std::cout;

        BenchReporter reporter{std::string(experiment->name())};
        util::Timer timer;
        bool passed = false;
        try {
          passed = experiment->run(ctx, reporter);
        } catch (const std::exception& e) {
          std::cerr << "error: [" << experiment->name() << "] " << e.what()
                    << "\n";
        }
        const double totalMs = timer.millis();
        allPassed &= passed;
        const std::string path = reporter.writeFile(cli.outDir, ctx, passed);
        std::cout << "\n[" << experiment->name() << "] "
                  << (passed ? "PASS" : "FAIL") << " in "
                  << util::formatDouble(totalMs, 1) << " ms — wrote " << path
                  << " (" << reporter.rowCount() << " records)\n\n";
      } catch (const std::exception& e) {
        allPassed = false;
        std::cerr << "error: [" << spec << "] " << e.what() << "\n";
      }
    }
    if (specs.size() > 1) {
      std::cout << (allPassed ? "suite PASS" : "suite FAIL") << " ("
                << specs.size() << " experiments)\n";
    }
    return allPassed ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace hbn::engine
