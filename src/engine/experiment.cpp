#include "hbn/engine/experiment.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#ifdef __unix__
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace hbn::engine {
namespace {

/// Stream buffer that swallows everything; backs ExperimentContext::os()
/// when no table destination was configured.
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
};

std::string hostName() {
#ifdef __unix__
  char buf[256] = {};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
#endif
  return "unknown";
}

std::string osName() {
#ifdef __unix__
  struct utsname uts{};
  if (::uname(&uts) == 0) {
    return std::string(uts.sysname) + " " + uts.release;
  }
#endif
  return "unknown";
}

std::string compilerName() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

int ExperimentContext::trials(int full) const {
  if (!smoke) return full;
  return std::max(2, full / 4);
}

std::ostream& ExperimentContext::os() const {
  if (out != nullptr) return *out;
  static NullBuffer buffer;
  static std::ostream sink(&buffer);
  return sink;
}

BenchReporter::BenchReporter(std::string experimentName)
    : name_(std::move(experimentName)) {}

void BenchReporter::beginRow(std::string_view kind) {
  records_.beginRecord();
  records_.field("schema_version", kSchemaVersion);
  records_.field("experiment", name_);
  records_.field("kind", kind);
}

void BenchReporter::field(std::string_view key, std::string_view value) {
  records_.field(key, value);
}

void BenchReporter::field(std::string_view key, std::int64_t value) {
  records_.field(key, value);
}

void BenchReporter::field(std::string_view key, double value) {
  records_.field(key, value);
}

void BenchReporter::field(std::string_view key, bool value) {
  records_.field(key, value);
}

void BenchReporter::summary(std::string_view prefix,
                            const util::Accumulator& acc) {
  const std::string p(prefix);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  records_.field(p + "_mean", acc.empty() ? nan : acc.mean());
  records_.field(p + "_p50", acc.empty() ? nan : acc.percentile(50.0));
  records_.field(p + "_p90", acc.empty() ? nan : acc.percentile(90.0));
  records_.field(p + "_min", acc.empty() ? nan : acc.min());
  records_.field(p + "_max", acc.empty() ? nan : acc.max());
}

std::string BenchReporter::writeFile(const std::string& dir,
                                     const ExperimentContext& ctx,
                                     bool passed) {
  beginRow("summary");
  field("passed", passed);
  field("mode", ctx.smoke ? "smoke" : "full");
  records_.field("seed", static_cast<std::int64_t>(ctx.seed));
  records_.field("threads", ctx.threads);
  records_.field("rows", static_cast<std::int64_t>(rowCount() - 1));
  summary("wall_ms", wallMs_);
  records_.field("host", hostName());
  records_.field("os", osName());
  records_.field("compiler", compilerName());
  records_.field(
      "cpus", static_cast<std::int64_t>(std::thread::hardware_concurrency()));

  std::string path = dir.empty() ? "." : dir;
  std::filesystem::create_directories(path);
  if (path.back() != '/') path.push_back('/');
  path += "BENCH_" + name_ + ".json";
  records_.writeFile(path);
  return path;
}

ExperimentRegistry& ExperimentRegistry::global() {
  static ExperimentRegistry* registry = new ExperimentRegistry();
  return *registry;
}

std::string ExperimentRegistry::helpText() const {
  std::ostringstream oss;
  for (const ExperimentInfo& info : list()) {
    oss << "  " << info.name;
    if (!info.optionsHelp.empty()) oss << "[:" << info.optionsHelp << "]";
    oss << "  (" << info.paperRef << ")\n      " << info.summary << "\n";
  }
  return oss.str();
}

}  // namespace hbn::engine
