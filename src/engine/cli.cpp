#include "hbn/engine/cli.h"

#include <sstream>
#include <stdexcept>

#include "hbn/engine/registry.h"

namespace hbn::engine {
namespace {

std::uint64_t parseUint(const std::string& flag, const std::string& text) {
  try {
    // std::stoull wraps negative input instead of throwing.
    if (text.empty() || text[0] == '-') throw std::invalid_argument("");
    std::size_t used = 0;
    const unsigned long long value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument("");
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument(flag + " expects a non-negative integer, got '" +
                                text + "'");
  }
}

void splitStrategies(const std::string& text,
                     std::vector<std::string>& out) {
  // Comma-separated specs, where a spec may itself contain commas inside
  // its option block: in "a:x=1,y=2,b" the "y=2" continues a's options
  // (the previous spec has a ':' and the token looks like key=value),
  // while "b" starts a new spec.
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const bool continuesOptions =
        !out.empty() && out.back().find(':') != std::string::npos &&
        token.find('=') != std::string::npos &&
        token.find(':') == std::string::npos;
    if (continuesOptions) {
      out.back() += "," + token;
    } else {
      out.push_back(token);
    }
  }
}

}  // namespace

CliOptions parseCli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(flag + " expects a value");
      }
      return argv[++i];
    };
    if (arg == "--strategy" || arg == "-s") {
      splitStrategies(value(arg), options.strategies);
    } else if (arg == "--threads" || arg == "-t") {
      const std::uint64_t threads = parseUint(arg, value(arg));
      if (threads > 4096) {
        throw std::invalid_argument(arg + " expects at most 4096, got " +
                                    std::to_string(threads));
      }
      options.threads = static_cast<int>(threads);
    } else if (arg == "--seed") {
      options.seed = parseUint(arg, value(arg));
      options.seedSet = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg.size() >= 2 && arg[0] == '-') {
      // Reject every unknown dash-argument (single or double) so typo'd
      // flags cannot silently become ignored positionals.
      throw std::invalid_argument("unknown flag '" + arg + "'");
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

std::string cliHelp() {
  std::ostringstream oss;
  oss << "options:\n"
         "  --strategy SPEC   placement strategy (repeatable; "
         "name[:key=value,...])\n"
         "  --threads N       worker threads for object-sharded strategies "
         "(0 = all cores)\n"
         "  --seed N          RNG seed for stochastic strategies\n"
         "  --help            show this text\n\n"
         "strategies:\n"
      << StrategyRegistry::global().helpText();
  return oss.str();
}

Context makeContext(const CliOptions& options, std::uint64_t defaultSeed) {
  Context ctx;
  ctx.threads = options.threads;
  ctx.seed = options.seedSet ? options.seed : defaultSeed;
  return ctx;
}

void requireNoPositional(const CliOptions& options) {
  if (!options.positional.empty()) {
    throw std::invalid_argument("unexpected argument '" +
                                options.positional.front() + "'");
  }
}

}  // namespace hbn::engine
