#include "hbn/engine/cli.h"

#include <sstream>
#include <stdexcept>

#include "hbn/engine/registry.h"

namespace hbn::engine {

std::uint64_t parseUintFlag(const std::string& flag, const std::string& text,
                            std::uint64_t max) {
  // Hand-rolled instead of std::stoull: stoull silently skips leading
  // whitespace, accepts '+'/'-' signs (wrapping negatives), and stops at
  // the first non-digit — all of which used to let partial parses like
  // '12x' or ' 7' through. Every deviation is rejected here with one
  // error vocabulary across --seed, --threads, and the serve flags.
  if (text.empty()) {
    throw std::invalid_argument(flag +
                                " expects a non-negative integer, got ''");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument(flag +
                                  " expects a non-negative integer, got '" +
                                  text + "'");
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      throw std::invalid_argument(flag + " value '" + text +
                                  "' is out of range");
    }
    value = value * 10 + digit;
  }
  if (value > max) {
    throw std::invalid_argument(flag + " expects at most " +
                                std::to_string(max) + ", got '" + text + "'");
  }
  return value;
}

namespace {

void splitStrategies(const std::string& text,
                     std::vector<std::string>& out) {
  // Comma-separated specs, where a spec may itself contain commas inside
  // its option block: in "a:x=1,y=2,b" the "y=2" continues a's options
  // (the previous spec has a ':' and the token looks like key=value),
  // while "b" starts a new spec.
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const bool continuesOptions =
        !out.empty() && out.back().find(':') != std::string::npos &&
        token.find('=') != std::string::npos &&
        token.find(':') == std::string::npos;
    if (continuesOptions) {
      out.back() += "," + token;
    } else {
      out.push_back(token);
    }
  }
}

}  // namespace

CliOptions parseCli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(flag + " expects a value");
      }
      return argv[++i];
    };
    if (arg == "--strategy" || arg == "-s") {
      splitStrategies(value(arg), options.strategies);
    } else if (arg == "--threads" || arg == "-t") {
      options.threads =
          static_cast<int>(parseUintFlag(arg, value(arg), /*max=*/4096));
    } else if (arg == "--seed") {
      options.seed = parseUintFlag(arg, value(arg));
      options.seedSet = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg.size() >= 2 && arg[0] == '-') {
      // Reject every unknown dash-argument (single or double) so typo'd
      // flags cannot silently become ignored positionals.
      throw std::invalid_argument("unknown flag '" + arg + "'");
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

std::string cliHelp() {
  std::ostringstream oss;
  oss << "options:\n"
         "  --strategy SPEC   placement strategy (repeatable; "
         "name[:key=value,...])\n"
         "  --threads N       worker threads for object-sharded strategies "
         "(0 = all cores)\n"
         "  --seed N          RNG seed for stochastic strategies\n"
         "  --help            show this text\n\n"
         "strategies:\n"
      << StrategyRegistry::global().helpText();
  return oss.str();
}

Context makeContext(const CliOptions& options, std::uint64_t defaultSeed) {
  Context ctx;
  ctx.threads = options.threads;
  ctx.seed = options.seedSet ? options.seed : defaultSeed;
  return ctx;
}

void requireNoPositional(const CliOptions& options) {
  if (!options.positional.empty()) {
    throw std::invalid_argument("unexpected argument '" +
                                options.positional.front() + "'");
  }
}

}  // namespace hbn::engine
