#include "hbn/dynamic/harness.h"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "hbn/core/lower_bound.h"

namespace hbn::dynamic {

void bucketRequestsByObject(std::span<const Request> requests,
                            int numObjects,
                            std::span<std::size_t> offsets,
                            std::span<Request> bucketed) {
  if (offsets.size() != static_cast<std::size_t>(numObjects) + 1 ||
      bucketed.size() != requests.size()) {
    throw std::invalid_argument("bucketRequestsByObject: buffer sizes");
  }
  std::fill(offsets.begin(), offsets.end(), 0);
  for (const Request& request : requests) {
    if (request.object < 0 || request.object >= numObjects) {
      throw std::out_of_range("bucketRequestsByObject: object id");
    }
    ++offsets[static_cast<std::size_t>(request.object) + 1];
  }
  for (std::size_t x = 0; x < static_cast<std::size_t>(numObjects); ++x) {
    offsets[x + 1] += offsets[x];
  }
  // Scatter using offsets[x] as the cursor, then shift the (now
  // advanced) table one slot right to restore the run starts.
  for (const Request& request : requests) {
    bucketed[offsets[static_cast<std::size_t>(request.object)]++] = request;
  }
  for (std::size_t x = static_cast<std::size_t>(numObjects); x > 0; --x) {
    offsets[x] = offsets[x - 1];
  }
  offsets[0] = 0;
}

std::vector<Request> sequenceFromWorkload(const workload::Workload& load,
                                          util::Rng& rng) {
  std::vector<Request> requests;
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    for (net::NodeId v = 0; v < load.numNodes(); ++v) {
      for (Count i = 0; i < load.reads(x, v); ++i) {
        requests.push_back(Request{x, v, false});
      }
      for (Count i = 0; i < load.writes(x, v); ++i) {
        requests.push_back(Request{x, v, true});
      }
    }
  }
  rng.shuffle(requests);
  return requests;
}

std::vector<Request> makePingPongSequence(const net::Tree& tree,
                                          int numObjects, int roundsPerObject,
                                          Count readsPerBurst,
                                          util::Rng& rng) {
  if (numObjects < 1 || roundsPerObject < 1 || readsPerBurst < 1) {
    throw std::invalid_argument("makePingPongSequence: positive sizes");
  }
  const auto procs = tree.processors();
  if (procs.size() < 2) {
    throw std::invalid_argument("makePingPongSequence: need >= 2 processors");
  }
  std::vector<Request> requests;
  for (ObjectId x = 0; x < numObjects; ++x) {
    // Two fixed "camps" per object: readers at one random processor,
    // writer at another.
    const net::NodeId reader = procs[static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(procs.size())))];
    net::NodeId writer = reader;
    while (writer == reader) {
      writer = procs[static_cast<std::size_t>(
          rng.nextBelow(static_cast<std::uint64_t>(procs.size())))];
    }
    for (int round = 0; round < roundsPerObject; ++round) {
      for (Count i = 0; i < readsPerBurst; ++i) {
        requests.push_back(Request{x, reader, false});
      }
      requests.push_back(Request{x, writer, true});
    }
  }
  return requests;
}

CompetitiveResult runCompetitive(const net::RootedTree& rooted,
                                 int numObjects,
                                 const std::vector<Request>& requests,
                                 const std::string& policySpec) {
  const net::Tree& tree = rooted.tree();
  const std::unique_ptr<OnlinePolicy> policy =
      OnlinePolicyRegistry::global().create(policySpec)->build(
          rooted, numObjects, tree.processors().front());
  workload::Workload aggregated(numObjects, tree.nodeCount());

  // Bucket the sequence by object (stable, preserving per-object
  // arrival order): object state machines are independent and integer
  // loads are additive, so grouped serving realises exactly the loads of
  // the interleaved sequence — while batching every object's path
  // charges through the difference-counting accumulator.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(numObjects) + 1);
  std::vector<Request> bucketed(requests.size());
  bucketRequestsByObject(requests, numObjects, offsets, bucketed);
  for (const Request& request : requests) {
    if (request.isWrite) {
      aggregated.addWrites(request.object, request.origin, 1);
    } else {
      aggregated.addReads(request.object, request.origin, 1);
    }
  }

  core::LoadMap loads(tree.edgeCount());
  core::FlatLoadAccumulator acc(policy->flatView());
  ServeScratch scratch;
  Count replications = 0;
  Count invalidations = 0;
  for (ObjectId x = 0; x < numObjects; ++x) {
    const std::size_t begin = offsets[static_cast<std::size_t>(x)];
    const std::size_t end = offsets[static_cast<std::size_t>(x) + 1];
    if (begin == end) continue;
    const ShardStats stats = policy->serveShard(
        x, std::span<const Request>(bucketed.data() + begin, end - begin),
        loads, scratch, &acc);
    replications += stats.replications;
    invalidations += stats.invalidations;
  }

  CompetitiveResult result;
  result.onlineCongestion = loads.congestion(tree);
  result.offlineLowerBound =
      core::analyticLowerBound(rooted, aggregated).congestion;
  result.ratio =
      competitiveRatio(result.onlineCongestion, result.offlineLowerBound);
  result.replications = replications;
  result.invalidations = invalidations;
  return result;
}

CompetitiveResult runCompetitive(const net::RootedTree& rooted,
                                 int numObjects,
                                 const std::vector<Request>& requests,
                                 const OnlineOptions& options) {
  return runCompetitive(rooted, numObjects, requests,
                        treeCountersSpec(options));
}

}  // namespace hbn::dynamic
