#include "hbn/dynamic/harness.h"

#include <algorithm>
#include <stdexcept>

#include "hbn/core/lower_bound.h"

namespace hbn::dynamic {

std::vector<Request> sequenceFromWorkload(const workload::Workload& load,
                                          util::Rng& rng) {
  std::vector<Request> requests;
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    for (net::NodeId v = 0; v < load.numNodes(); ++v) {
      for (Count i = 0; i < load.reads(x, v); ++i) {
        requests.push_back(Request{x, v, false});
      }
      for (Count i = 0; i < load.writes(x, v); ++i) {
        requests.push_back(Request{x, v, true});
      }
    }
  }
  rng.shuffle(requests);
  return requests;
}

std::vector<Request> makePingPongSequence(const net::Tree& tree,
                                          int numObjects, int roundsPerObject,
                                          Count readsPerBurst,
                                          util::Rng& rng) {
  if (numObjects < 1 || roundsPerObject < 1 || readsPerBurst < 1) {
    throw std::invalid_argument("makePingPongSequence: positive sizes");
  }
  const auto procs = tree.processors();
  if (procs.size() < 2) {
    throw std::invalid_argument("makePingPongSequence: need >= 2 processors");
  }
  std::vector<Request> requests;
  for (ObjectId x = 0; x < numObjects; ++x) {
    // Two fixed "camps" per object: readers at one random processor,
    // writer at another.
    const net::NodeId reader = procs[static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(procs.size())))];
    net::NodeId writer = reader;
    while (writer == reader) {
      writer = procs[static_cast<std::size_t>(
          rng.nextBelow(static_cast<std::uint64_t>(procs.size())))];
    }
    for (int round = 0; round < roundsPerObject; ++round) {
      for (Count i = 0; i < readsPerBurst; ++i) {
        requests.push_back(Request{x, reader, false});
      }
      requests.push_back(Request{x, writer, true});
    }
  }
  return requests;
}

CompetitiveResult runCompetitive(const net::RootedTree& rooted,
                                 int numObjects,
                                 const std::vector<Request>& requests,
                                 const OnlineOptions& options) {
  const net::Tree& tree = rooted.tree();
  OnlineTreeStrategy strategy(rooted, numObjects, tree.processors().front(),
                              options);
  workload::Workload aggregated(numObjects, tree.nodeCount());
  for (const Request& request : requests) {
    strategy.serve(request);
    if (request.isWrite) {
      aggregated.addWrites(request.object, request.origin, 1);
    } else {
      aggregated.addReads(request.object, request.origin, 1);
    }
  }
  CompetitiveResult result;
  result.onlineCongestion = strategy.loads().congestion(tree);
  result.offlineLowerBound =
      core::analyticLowerBound(rooted, aggregated).congestion;
  result.ratio =
      competitiveRatio(result.onlineCongestion, result.offlineLowerBound);
  result.replications = strategy.replications();
  result.invalidations = strategy.invalidations();
  return result;
}

}  // namespace hbn::dynamic
