#include "hbn/dynamic/adaptive_policy.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "hbn/net/steiner.h"

namespace hbn::dynamic {
namespace {

// tree-counters is the safe generalist, full-replication the read-heavy
// specialist. owner-only is deliberately NOT a default member: it wins
// no stream family outright (tree-counters contracts to one copy under
// writes anyway) and near-cold objects flip to it on window noise.
constexpr const char* kDefaultMembers = "tree-counters+full-replication";

void checkObject(ObjectId x, int numObjects, const char* where) {
  if (x < 0 || x >= numObjects) {
    throw std::out_of_range(std::string("adaptive ") + where + ": object id");
  }
}

}  // namespace

/// The pass of a routing handoff: object x migrates to the copy set of
/// the member the snapshot routed it to. Member copy sets only mutate
/// when x is served or reset, and the server applies a pass to x before
/// x's next serve — so reading the member lazily here returns the same
/// locations an eager materialisation at trigger time would have
/// (per-row stability), at per-touch cost. The owning policy outlives
/// every pass the server holds.
class AdaptivePolicy::RoutePass final : public HandoffPass {
 public:
  RoutePass(AdaptivePolicy& owner, std::size_t seq)
      : owner_(&owner), seq_(seq) {}

  [[nodiscard]] std::vector<net::NodeId> target(ObjectId x,
                                                int /*worker*/) override {
    checkObject(x, owner_->numObjects_, "RoutePass::target");
    const std::uint8_t member = owner_->snapshots_[seq_][static_cast<std::size_t>(x)];
    return owner_->members_[member]->copySet(x);
  }

 private:
  AdaptivePolicy* owner_;
  std::size_t seq_;
};

AdaptivePolicy::AdaptivePolicy(
    const net::RootedTree& rooted, int numObjects,
    std::vector<std::unique_ptr<OnlinePolicy>> members, int window)
    : flat_(rooted),
      edgeCount_(rooted.tree().edgeCount()),
      numObjects_(numObjects),
      window_(window),
      members_(std::move(members)) {
  if (numObjects < 1) {
    throw std::invalid_argument("adaptive: numObjects >= 1");
  }
  if (members_.size() < 2) {
    throw std::invalid_argument(
        "adaptive: needs at least two member policies");
  }
  if (members_.size() > 255) {
    throw std::invalid_argument("adaptive: at most 255 member policies");
  }
  if (window_ < 1) {
    throw std::invalid_argument("adaptive: window >= 1");
  }
  const auto objects = static_cast<std::size_t>(numObjects);
  routes_.assign(objects, Route{});
  windowCost_.assign(objects * members_.size(), 0);
  smoothedCost_.assign(objects * members_.size(), 0);
  prevRaw_.assign(objects * members_.size(), 0);
  chargedCost_.assign(objects * members_.size(), 0);
  pending_.assign(objects, 0);
  appliedSeq_.assign(objects, 0);
}

std::string AdaptivePolicy::spec() const {
  std::string out = "adaptive:members=";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i != 0) out += '+';
    out += members_[i]->spec();
  }
  out += ",window=";
  out += std::to_string(window_);
  return out;
}

ShardStats AdaptivePolicy::serveShard(ObjectId x,
                                      std::span<const Request> requests,
                                      core::LoadMap& loads,
                                      ServeScratch& scratch,
                                      core::FlatLoadAccumulator* /*acc*/) {
  checkObject(x, numObjects_, "serveShard");
  if (scratch.shadowLoads.edgeLoads().size() !=
      static_cast<std::size_t>(edgeCount_)) {
    scratch.shadowLoads = core::LoadMap(edgeCount_);
  }
  Route& route = routes_[static_cast<std::size_t>(x)];
  const std::size_t m = members_.size();
  const std::size_t base = static_cast<std::size_t>(x) * m;
  ShardStats out{};
  // Shadow-serve every member so each one's internal state (counters,
  // copy sets) and window score evolve from the object's full request
  // sequence, independent of which member is active — the invariant
  // that makes switching a pure copy-set migration. Only the active
  // member's charges reach the caller's LoadMap and ShardStats.
  for (std::size_t i = 0; i < m; ++i) {
    scratch.shadowLoads.clear();
    const ShardStats stats = members_[i]->serveShard(
        x, requests, scratch.shadowLoads, scratch, nullptr);
    windowCost_[base + i] +=
        scratch.shadowLoads.totalLoad() * kScoreScale;
    if (i == route.active) {
      out = stats;
      chargedCost_[base + i] += scratch.shadowLoads.totalLoad();
      const std::span<const core::Count> edges =
          scratch.shadowLoads.edgeLoads();
      for (net::EdgeId e = 0; e < edgeCount_; ++e) {
        const core::Count load = edges[static_cast<std::size_t>(e)];
        if (load != 0) loads.addEdgeLoad(e, load);
      }
    }
  }
  for (const Request& request : requests) {
    if (request.isWrite) {
      ++route.writes;
    } else {
      ++route.reads;
    }
  }
  if (++route.touches >= static_cast<std::uint32_t>(window_)) decide(x);
  return out;
}

core::Count AdaptivePolicy::switchCost(ObjectId x, std::size_t to) const {
  const Route& route = routes_[static_cast<std::size_t>(x)];
  std::vector<net::NodeId> terminals = members_[route.active]->copySet(x);
  const std::vector<net::NodeId> target = members_[to]->copySet(x);
  terminals.insert(terminals.end(), target.begin(), target.end());
  std::sort(terminals.begin(), terminals.end());
  terminals.erase(std::unique(terminals.begin(), terminals.end()),
                  terminals.end());
  // The pass loads every edge of Steiner(old ∪ new) once — its total
  // load is the tree's edge count, in the same units (and fixed-point
  // scale) as the member scores, so the gate compares like with like.
  return static_cast<core::Count>(
             net::steinerEdges(flat_.rooted(), terminals).size()) *
         kScoreScale;
}

void AdaptivePolicy::decide(ObjectId x) {
  Route& route = routes_[static_cast<std::size_t>(x)];
  const std::size_t m = members_.size();
  core::Count* raw = &windowCost_[static_cast<std::size_t>(x) * m];
  core::Count* slow = &smoothedCost_[static_cast<std::size_t>(x) * m];
  // Slow EWMA (decay 3/4, seeded with the first window): integrates
  // ~4 windows, so a single noisy window (one write burst against a
  // replicated object) barely moves it.
  for (std::size_t i = 0; i < m; ++i) {
    const core::Count sample =
        i == route.active ? std::min(raw[i], 2 * slow[i] + kScoreScale)
                          : raw[i];
    slow[i] = route.seeded ? (3 * slow[i] + sample) / 4 : raw[i];
  }
  route.seeded = 1;
  if (route.stable < kAmortiseMax) ++route.stable;
  route.desired = route.active;
  // Two switching paths, both gated on the one-time migration cost —
  // Steiner(old copy set ∪ new copy set), the exact charge the
  // server's handoff pass will make. Both are deterministic in x's own
  // history, so the decision stays thread-count independent.
  //  * FAST path, rolling two-window raw scores: a regime change or a
  //    hot object's first windows show a LARGE saving — more than
  //    twice the migration cost across two consecutive windows — and
  //    must not wait for the EWMA to catch up (a stale-high EWMA from
  //    the previous regime takes ~10 windows to decay). Window noise
  //    (a write burst against a replicated object costs ~one
  //    broadcast per write) stays below the 2× bar even across two
  //    windows.
  //  * SLOW path, smoothed scores: a modest but persistent saving
  //    amortises the migration cost over the escalating horizon
  //    min(stable windows, kAmortiseMax) — a fresh switch must prove
  //    itself against a strict bar, a long-stable object may move on
  //    thin margins. The slow EWMA ensures the margin really is
  //    persistent, not one window's noise.
  core::Count* prev = &prevRaw_[static_cast<std::size_t>(x) * m];
  std::size_t fastBest = 0;
  std::size_t slowBest = 0;
  for (std::size_t i = 0; i < m; ++i) {
    prev[i] += raw[i];  // prev now holds the two-window rolling sum
    if (prev[i] < prev[fastBest]) fastBest = i;
    if (slow[i] < slow[slowBest]) slowBest = i;
  }
  if (fastBest != route.active &&
      prev[fastBest] * kSwitchDen < prev[route.active] * kSwitchNum &&
      prev[route.active] - prev[fastBest] >
          2 * switchCost(x, fastBest)) {
    route.desired = static_cast<std::uint8_t>(fastBest);
  } else if (slowBest != route.active &&
             slow[slowBest] * kSwitchDen <
                 slow[route.active] * kSwitchNum &&
             (slow[route.active] - slow[slowBest]) *
                     static_cast<core::Count>(route.stable) >
                 switchCost(x, slowBest)) {
    route.desired = static_cast<std::uint8_t>(slowBest);
  }
  pending_[static_cast<std::size_t>(x)] =
      route.desired != route.active ? 1 : 0;
  std::copy(raw, raw + m, prev);  // keep this window for the next sum
  std::fill(raw, raw + m, 0);
  route.touches = 0;
}

std::vector<net::NodeId> AdaptivePolicy::copySet(ObjectId x) const {
  checkObject(x, numObjects_, "copySet");
  return members_[routes_[static_cast<std::size_t>(x)].active]->copySet(x);
}

bool AdaptivePolicy::wantsHandoff() const {
  return std::any_of(pending_.begin(), pending_.end(),
                     [](char flag) { return flag != 0; });
}

core::Placement AdaptivePolicy::handoffPlacement(
    const workload::Workload& /*aggregated*/, int /*threads*/) {
  ++handoffs_;
  core::Placement placement;
  placement.objects.resize(static_cast<std::size_t>(numObjects_));
  for (ObjectId x = 0; x < numObjects_; ++x) {
    const std::uint8_t member = routes_[static_cast<std::size_t>(x)].desired;
    core::ObjectPlacement& object =
        placement.objects[static_cast<std::size_t>(x)];
    for (const net::NodeId v : members_[member]->copySet(x)) {
      object.copies.push_back(core::Copy{v, {}});
    }
  }
  return placement;
}

std::unique_ptr<HandoffPass> AdaptivePolicy::beginHandoff(
    std::shared_ptr<const workload::Workload> /*aggregated*/,
    int /*workers*/) {
  ++handoffs_;
  // Snapshot the routing decision per object and clear the request
  // flags: this pass commits exactly these routes, and wantsHandoff
  // only re-fires if a later decision diverges again. Serve thread,
  // workers quiescent — see the epoch server's beginPass.
  std::vector<std::uint8_t> snapshot(static_cast<std::size_t>(numObjects_));
  for (ObjectId x = 0; x < numObjects_; ++x) {
    snapshot[static_cast<std::size_t>(x)] =
        routes_[static_cast<std::size_t>(x)].desired;
    pending_[static_cast<std::size_t>(x)] = 0;
  }
  snapshots_.push_back(std::move(snapshot));
  ++passesBegun_;
  return std::make_unique<RoutePass>(*this, snapshots_.size() - 1);
}

void AdaptivePolicy::resetCopySet(ObjectId x,
                                  std::span<const net::NodeId> locations) {
  checkObject(x, numObjects_, "resetCopySet");
  Route& route = routes_[static_cast<std::size_t>(x)];
  std::uint64_t& seq = appliedSeq_[static_cast<std::size_t>(x)];
  std::uint8_t member;
  if (seq < passesBegun_) {
    // Applying pass #seq (creation order): commit the member that pass
    // snapshotted, NOT the current desired — chained pending passes
    // then apply identically whether drained at the trigger (barrier)
    // or on later touches (pipelined).
    member = snapshots_[static_cast<std::size_t>(seq - snapshotBase_)]
                       [static_cast<std::size_t>(x)];
    ++seq;
  } else {
    // Direct seam use (handoffPlacement + resetCopySet with no pass
    // begun): commit the current decision.
    member = route.desired;
  }
  const std::vector<net::NodeId> expected = members_[member]->copySet(x);
  if (expected.size() != locations.size() ||
      !std::equal(expected.begin(), expected.end(), locations.begin())) {
    throw std::invalid_argument(
        "adaptive: resetCopySet locations do not match the routed "
        "member's copy set (the §4 seam must hand back the pass target "
        "unchanged)");
  }
  if (member != route.active) {
    route.active = member;
    route.stable = 0;  // restart the amortisation escalation
    ++route.switches;
  }
  pending_[static_cast<std::size_t>(x)] =
      route.desired != route.active ? 1 : 0;
}

void AdaptivePolicy::serializeState(std::ostream& os) const {
  // Quiescence: every begun pass has been applied to every object (the
  // epoch server drains before checkpointing), so the routing snapshots
  // are dead and only the pass COUNT needs to survive.
  for (const std::uint64_t seq : appliedSeq_) {
    if (seq != passesBegun_) {
      throw std::logic_error(
          "adaptive: serializeState requires a quiescent policy (an "
          "in-flight handoff pass has not been applied everywhere)");
    }
  }
  const std::size_t m = members_.size();
  os << "adaptive v1 " << m << ' ' << window_ << ' ' << passesBegun_ << ' '
     << handoffs_ << '\n';
  for (std::size_t i = 0; i < m; ++i) {
    os << "member " << i << '\n';
    members_[i]->serializeState(os);
  }
  os << "routes\n";
  for (std::size_t x = 0; x < routes_.size(); ++x) {
    const Route& r = routes_[x];
    os << x << ' ' << static_cast<unsigned>(r.active) << ' '
       << static_cast<unsigned>(r.desired) << ' '
       << static_cast<unsigned>(r.stable) << ' '
       << static_cast<unsigned>(r.seeded) << ' ' << r.touches << ' '
       << r.switches << ' ' << r.reads << ' ' << r.writes << ' '
       << static_cast<unsigned>(pending_[x]) << '\n';
  }
  os << "costs\n";
  for (std::size_t x = 0; x < routes_.size(); ++x) {
    os << x;
    const std::size_t base = x * m;
    for (std::size_t i = 0; i < m; ++i) os << ' ' << windowCost_[base + i];
    for (std::size_t i = 0; i < m; ++i) os << ' ' << smoothedCost_[base + i];
    for (std::size_t i = 0; i < m; ++i) os << ' ' << prevRaw_[base + i];
    for (std::size_t i = 0; i < m; ++i) os << ' ' << chargedCost_[base + i];
    os << '\n';
  }
}

void AdaptivePolicy::restoreState(std::istream& in) {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument("adaptive state: " + why);
  };
  std::string tag;
  std::string version;
  std::size_t m = 0;
  int window = 0;
  if (!(in >> tag >> version >> m >> window >> passesBegun_ >> handoffs_) ||
      tag != "adaptive" || version != "v1") {
    fail("bad header");
  }
  if (m != members_.size() || window != window_) {
    fail("member count or window does not match this configuration");
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t index = 0;
    if (!(in >> tag >> index) || tag != "member" || index != i) {
      fail("bad member header");
    }
    members_[i]->restoreState(in);
  }
  if (!(in >> tag) || tag != "routes") fail("missing routes section");
  for (std::size_t x = 0; x < routes_.size(); ++x) {
    std::size_t id = 0;
    unsigned active = 0, desired = 0, stable = 0, seeded = 0, pending = 0;
    Route r;
    if (!(in >> id >> active >> desired >> stable >> seeded >> r.touches >>
          r.switches >> r.reads >> r.writes >> pending) ||
        id != x) {
      fail("bad route line");
    }
    if (active >= m || desired >= m || stable > kAmortiseMax || seeded > 1 ||
        pending > 1) {
      fail("route fields out of range");
    }
    r.active = static_cast<std::uint8_t>(active);
    r.desired = static_cast<std::uint8_t>(desired);
    r.stable = static_cast<std::uint8_t>(stable);
    r.seeded = static_cast<std::uint8_t>(seeded);
    routes_[x] = r;
    pending_[x] = static_cast<char>(pending);
  }
  if (!(in >> tag) || tag != "costs") fail("missing costs section");
  for (std::size_t x = 0; x < routes_.size(); ++x) {
    std::size_t id = 0;
    if (!(in >> id) || id != x) fail("bad cost line");
    const std::size_t base = x * m;
    for (std::size_t i = 0; i < m; ++i) {
      if (!(in >> windowCost_[base + i])) fail("bad window cost");
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (!(in >> smoothedCost_[base + i])) fail("bad smoothed cost");
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (!(in >> prevRaw_[base + i])) fail("bad previous-window cost");
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (!(in >> chargedCost_[base + i])) fail("bad charged cost");
    }
  }
  // The serialized point was quiescent: all passes applied, snapshots
  // dead. Future passes index snapshots_ relative to the restored base.
  snapshots_.clear();
  snapshotBase_ = passesBegun_;
  std::fill(appliedSeq_.begin(), appliedSeq_.end(), passesBegun_);
}

std::map<std::string, double> AdaptivePolicy::metrics() const {
  std::map<std::string, double> out;
  const std::size_t m = members_.size();
  out["policy.adaptive.members"] = static_cast<double>(m);
  out["policy.adaptive.window"] = static_cast<double>(window_);
  out["policy.adaptive.handoffs"] = static_cast<double>(handoffs_);
  std::uint64_t switches = 0;
  std::vector<std::int64_t> objectsOn(m, 0);
  for (const Route& route : routes_) {
    switches += route.switches;
    ++objectsOn[route.active];
  }
  out["policy.adaptive.switches"] = static_cast<double>(switches);
  std::vector<core::Count> charged(m, 0);
  core::Count total = 0;
  for (std::size_t x = 0; x < routes_.size(); ++x) {
    for (std::size_t i = 0; i < m; ++i) {
      charged[i] += chargedCost_[x * m + i];
      total += chargedCost_[x * m + i];
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    const std::string prefix =
        "policy.adaptive.member" + std::to_string(i);
    out[prefix + ".objects"] = static_cast<double>(objectsOn[i]);
    out[prefix + ".share"] =
        total > 0 ? static_cast<double>(charged[i]) /
                        static_cast<double>(total)
                  : 0.0;
    // Re-key the member's own diagnostics under its slot, so one JSON
    // report carries the whole composition ("policy.threshold" →
    // "policy.adaptive.member0.threshold").
    for (const auto& [key, value] : members_[i]->metrics()) {
      constexpr std::string_view kPolicyPrefix = "policy.";
      std::string_view suffix = key;
      if (suffix.substr(0, kPolicyPrefix.size()) == kPolicyPrefix) {
        suffix.remove_prefix(kPolicyPrefix.size());
      }
      out[prefix + "." + std::string(suffix)] = value;
    }
  }
  return out;
}

namespace {

/// Factory: member factories are resolved at spec-parse time (a typo
/// fails at the CLI), fresh member instances are built per server.
class AdaptivePolicyFactory final : public OnlinePolicyFactory {
 public:
  AdaptivePolicyFactory(
      std::vector<std::shared_ptr<const OnlinePolicyFactory>> members,
      int window)
      : members_(std::move(members)), window_(window) {}

  [[nodiscard]] std::unique_ptr<OnlinePolicy> build(
      const net::RootedTree& rooted, int numObjects,
      net::NodeId initialLocation) const override {
    std::vector<std::unique_ptr<OnlinePolicy>> built;
    built.reserve(members_.size());
    for (const auto& factory : members_) {
      built.push_back(factory->build(rooted, numObjects, initialLocation));
    }
    return std::make_unique<AdaptivePolicy>(rooted, numObjects,
                                            std::move(built), window_);
  }

 private:
  std::vector<std::shared_ptr<const OnlinePolicyFactory>> members_;
  int window_;
};

std::vector<std::string> splitMembers(const std::string& membersSpec) {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  while (pos <= membersSpec.size()) {
    std::size_t plus = membersSpec.find('+', pos);
    if (plus == std::string::npos) plus = membersSpec.size();
    const std::string item = membersSpec.substr(pos, plus - pos);
    if (item.empty()) {
      throw std::invalid_argument(
          "adaptive: empty member spec in members='" + membersSpec +
          "' (use members=<spec>+<spec>, e.g. members=" +
          std::string(kDefaultMembers) + ")");
    }
    specs.push_back(item);
    pos = plus + 1;
  }
  return specs;
}

}  // namespace

namespace detail {

void registerAdaptivePolicy(OnlinePolicyRegistry& registry) {
  registry.add(
      {"adaptive",
       "per-object meta-policy: shadow-scores every member policy per "
       "shard and routes each object to the cheapest, hot-swapping at "
       "epoch boundaries through the handoff seam",
       "members=SPEC+SPEC+...,window=N"},
      [](engine::StrategyOptions& options) {
        const std::string membersSpec =
            options.getString("members", kDefaultMembers);
        const std::int64_t window = options.getInt("window", 1);
        if (window < 1 || window > 1'000'000) {
          throw std::invalid_argument(
              "adaptive: window=" + std::to_string(window) +
              " out of range (touched epochs per scoring window, >= 1)");
        }
        const std::vector<std::string> memberSpecs =
            splitMembers(membersSpec);
        if (memberSpecs.size() < 2) {
          throw std::invalid_argument(
              "adaptive: needs at least two member policies to route "
              "between, got members='" + membersSpec + "'");
        }
        std::vector<std::shared_ptr<const OnlinePolicyFactory>> members;
        members.reserve(memberSpecs.size());
        for (const std::string& spec : memberSpecs) {
          if (engine::splitSpec(spec).name == "adaptive") {
            throw std::invalid_argument(
                "adaptive: members cannot nest adaptive (list the leaf "
                "policies of the composition instead)");
          }
          members.push_back(OnlinePolicyRegistry::global().create(spec));
        }
        return std::make_unique<AdaptivePolicyFactory>(
            std::move(members), static_cast<int>(window));
      },
      {"meta"});
}

}  // namespace detail
}  // namespace hbn::dynamic
