// The adaptive per-object meta-policy.
//
// e14 (BENCH_policy-comparison.json) shows the paper's tension
// empirically: no fixed policy dominates — tree-counters wins read-heavy
// skew against owner-only but loses to full-replication there, while
// full-replication collapses under write-heavy churn. The paper's §4
// dynamic scheme is exactly a per-object read/write-mix tracker, and the
// registry architecture makes the obvious next step cheap: a meta-policy
// that *measures* each member policy per object and routes the object to
// whichever is cheapest right now.
//
// Mechanics:
//   * every shard is shadow-served through EVERY member policy into a
//     per-worker scratch LoadMap; only the object's active member's
//     charges reach the caller. Member states therefore depend only on
//     the object's request sequence — never on routing — which is what
//     keeps 1-vs-N-thread and barrier-vs-pipelined serving bit-identical
//     and makes a routing switch a pure copy-set migration;
//   * per object and member, the shadow window totals (fixed-point, see
//     kScoreScale) feed two views: the raw two-window rolling sum and a
//     slow EWMA (decay 3/4; the active member's sample is winsorised at
//     2× its EWMA so one spike window cannot trigger an eviction, while
//     a persistent rise still doubles through per window);
//   * at each window end the object re-decides. Both switching paths
//     require the 3/4 hysteresis ratio (kSwitchNum/kSwitchDen) and are
//     gated on the one-time migration cost, Steiner(old ∪ new copy
//     set) — the exact charge the server's handoff pass makes. The FAST
//     path reads the rolling raw sum and needs 2× the migration cost in
//     saving (regime changes and freshly hot objects must not wait for
//     the EWMA); the SLOW path reads the EWMA and amortises the
//     migration cost over the escalating horizon min(stable windows,
//     kAmortiseMax), so modest but persistent savings migrate
//     long-stable objects;
//   * objects whose desired member differs from their active one raise
//     wantsHandoff(); the epoch server begins a §4 HandoffPass at the
//     next epoch boundary, and the pass routes each object to its
//     snapshot member's copy set. The server charges Steiner(old ∪ new)
//     exactly once per pass per object (nothing when the sets already
//     coincide) and resetCopySet commits the switch — migration
//     accounting rides the existing handoff seam unchanged.
//
// Spec grammar (shared `name:key=value` parser):
//   adaptive:members=<spec>+<spec>[+<spec>...],window=<epochs>
// Member specs are online-policy specs themselves (composed registries);
// because the outer option list splits on commas first, an embedded
// member spec cannot carry commas — single-option member specs like
// `tree-counters:threshold=4` or `static:placement=extended-nibble`
// work, `adaptive` itself cannot be nested. Defaults:
// members=tree-counters+full-replication, window=1.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hbn/dynamic/online_policy.h"

namespace hbn::dynamic {

/// Routes every object to the cheapest of several member policies,
/// re-scored online each window and hot-swapped at epoch boundaries
/// through the §4 handoff seam. See the file comment for the contract.
class AdaptivePolicy final : public OnlinePolicy {
 public:
  /// Hysteresis: a challenger switches an object only when its window
  /// cost is strictly below kSwitchNum/kSwitchDen of the active
  /// member's (ties and near-ties keep the incumbent, so stationary
  /// scores never oscillate).
  static constexpr core::Count kSwitchNum = 3;
  static constexpr core::Count kSwitchDen = 4;
  /// A switch must recoup its one-time migration cost (the Steiner
  /// charge of old ∪ new copy set) within an amortisation horizon of
  /// min(stable windows, kAmortiseMax) windows of the observed saving.
  /// The horizon ESCALATES with stability: an object that just switched
  /// must recoup within one window (blocking noise-driven flip-backs),
  /// while a long-stable object may amortise over up to kAmortiseMax
  /// windows (so modest but persistent savings still migrate it).
  static constexpr core::Count kAmortiseMax = 8;
  /// Member scores are the member's shadow window TOTAL load in
  /// 1/kScoreScale fixed-point units — integer EWMA on small raw
  /// values would quantise to zero.
  static constexpr core::Count kScoreScale = 16;
  /// `members` in spec order (>= 2, <= 255; member 0 is every object's
  /// initial assignment); `window` >= 1 touched epochs per scoring
  /// window.
  AdaptivePolicy(const net::RootedTree& rooted, int numObjects,
                 std::vector<std::unique_ptr<OnlinePolicy>> members,
                 int window);

  [[nodiscard]] std::string_view name() const override { return "adaptive"; }
  [[nodiscard]] std::string spec() const override;

  ShardStats serveShard(ObjectId x, std::span<const Request> requests,
                        core::LoadMap& loads, ServeScratch& scratch,
                        core::FlatLoadAccumulator* acc) override;

  [[nodiscard]] std::vector<net::NodeId> copySet(ObjectId x) const override;
  [[nodiscard]] const core::FlatTreeView& flatView() const noexcept override {
    return flat_;
  }

  [[nodiscard]] bool migratable() const noexcept override { return true; }
  [[nodiscard]] bool wantsHandoff() const override;

  [[nodiscard]] core::Placement handoffPlacement(
      const workload::Workload& aggregated, int threads) override;
  [[nodiscard]] std::unique_ptr<HandoffPass> beginHandoff(
      std::shared_ptr<const workload::Workload> aggregated,
      int workers) override;
  void resetCopySet(ObjectId x,
                    std::span<const net::NodeId> locations) override;

  /// policy.adaptive.{members,window,handoffs,switches} plus, per
  /// member i (spec order), policy.adaptive.member<i>.objects (objects
  /// currently routed to it), .share (its fraction of the charged
  /// serving load) and the member's own metrics re-keyed under
  /// policy.adaptive.member<i>.*.
  [[nodiscard]] std::map<std::string, double> metrics() const override;

  /// Serializes the full meta-state — routes, all four score matrices,
  /// pending flags, pass counters — plus every member policy's state
  /// recursively. Requires quiescence (every object has applied every
  /// begun pass, so the routing snapshots are dead); throws
  /// std::logic_error otherwise.
  void serializeState(std::ostream& os) const override;
  void restoreState(std::istream& in) override;

 private:
  class RoutePass;

  /// Per-object routing state; disjoint across objects, so serveShard
  /// and resetCopySet keep the concurrent-shards contract.
  struct Route {
    std::uint8_t active = 0;   ///< member currently serving the caller
    std::uint8_t desired = 0;  ///< scored-best member, post-hysteresis
    std::uint8_t stable = 0;   ///< decided windows since the last switch
                               ///< (saturates at kAmortiseMax)
    std::uint8_t seeded = 0;   ///< smoothedCost_ row holds a real score
    std::uint32_t touches = 0;  ///< touched epochs since the last decision
    std::uint32_t switches = 0;
    core::Count reads = 0;
    core::Count writes = 0;
  };

  /// One-time migration cost of routing x from its active member to
  /// `to`: the Steiner charge of the union of both copy sets — exactly
  /// what the server's handoff pass will charge.
  [[nodiscard]] core::Count switchCost(ObjectId x, std::size_t to) const;

  void decide(ObjectId x);

  core::FlatTreeView flat_;
  int edgeCount_;
  int numObjects_;
  int window_;
  std::vector<std::unique_ptr<OnlinePolicy>> members_;
  std::vector<Route> routes_;
  std::vector<core::Count> windowCost_;   ///< numObjects × members
  /// numObjects × members: slow EWMA of windowCost_ (decay 3/4 per
  /// window, seeded with the first window; the active member's sample
  /// is winsorised) — the slow switching path reads this, so one noisy
  /// window never flips an object by itself.
  std::vector<core::Count> smoothedCost_;
  /// numObjects × members: the previous window's raw cost — the fast
  /// switching path reads the two-window rolling sum prev + current.
  std::vector<core::Count> prevRaw_;
  std::vector<core::Count> chargedCost_;  ///< numObjects × members, lifetime
  std::vector<char> pending_;             ///< desired != active flags
  /// Routing snapshots, one per beginHandoff, in pass-creation order;
  /// resetCopySet consumes them per object through appliedSeq_ so
  /// chained passes commit the member each pass was CREATED against
  /// (barrier and pipelined application then stay bit-identical).
  /// snapshots_[k] belongs to pass number snapshotBase_ + k: a restored
  /// policy starts with an empty vector but a nonzero pass count, so
  /// the base keeps absolute pass numbers indexable.
  std::vector<std::vector<std::uint8_t>> snapshots_;
  std::uint64_t snapshotBase_ = 0;
  std::vector<std::uint64_t> appliedSeq_;  ///< per object: passes applied
  std::uint64_t passesBegun_ = 0;
  std::uint64_t handoffs_ = 0;
};

namespace detail {
/// Registers the `adaptive` policy; called from registerBuiltinPolicies.
void registerAdaptivePolicy(OnlinePolicyRegistry& registry);
}  // namespace detail

}  // namespace hbn::dynamic
