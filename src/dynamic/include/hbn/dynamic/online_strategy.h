// Dynamic (online) data management on trees — extension module.
//
// The paper's related work (§1.3) points to the dynamic tree strategy of
// [10], which achieves competitive ratio 3 for congestion on trees by
// maintaining, per object, a connected copy subtree that grows towards
// readers and shrinks on writes, steered by per-edge counters. The exact
// FOCS'97 pseudocode is not reproduced in this paper, so this module
// implements the canonical counter scheme it describes:
//
//   * the copy set of object x is always a connected subtree T(x);
//   * a READ from v is served by the copy at the entry point of v into
//     T(x) (load: the v→entry path). Every edge on that path accrues a
//     read counter; an edge adjacent to T(x) whose counter reaches the
//     replication threshold D gets the copy set extended across it
//     (load: +1 object migration on that edge), cascading towards v;
//   * a WRITE from v updates all copies (load: v→entry path plus the
//     Steiner tree of T(x), as in the static model) and then contracts
//     the copy set to the single entry-point node, resetting all counters
//     of x (writes invalidate remote replicas).
//
// With D = 1 this mirrors the classic replicate-on-read /
// invalidate-on-write policy whose tree competitiveness is O(1); the E-
// series harness measures the realised congestion ratio against the
// offline static optimum (extended-nibble / analytic LB on the aggregated
// frequencies).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "hbn/core/flat_load.h"
#include "hbn/core/load.h"
#include "hbn/net/rooted.h"
#include "hbn/workload/workload.h"

namespace hbn::dynamic {

using core::Count;
using workload::ObjectId;

/// Strategy knobs.
struct OnlineOptions {
  /// Reads across an edge needed before the copy set expands over it.
  Count replicationThreshold = 2;
  /// Whether writes contract the copy set to the writer-side entry node.
  bool contractOnWrite = true;
};

/// One online request (the workload layer's stream event).
using Request = workload::RequestEvent;

/// Replication/invalidation counts of one serveShard call.
struct ShardStats {
  Count replications = 0;
  Count invalidations = 0;
};

/// Reusable per-worker buffers for serveShard: origin-side and
/// anchor-side scratch for the fused entry-point/charging walk. One
/// instance per worker thread amortises every per-request allocation
/// away.
struct ServeScratch {
  std::vector<net::NodeId> upPath;
  std::vector<net::NodeId> descent;
  /// Shadow LoadMap the adaptive meta-policy scores member policies
  /// into (one member at a time, cleared between members); sized lazily
  /// to the tree's edge count on first use so policies that never
  /// shadow-serve pay nothing.
  core::LoadMap shadowLoads{0};
};

/// Executes requests online, maintaining per-object copy subtrees and
/// accumulating the exact communication load of services, updates and
/// migrations.
class OnlineTreeStrategy {
 public:
  /// Copies start on `initialLocation` (one copy per object); pass a
  /// processor, e.g. tree.processors().front().
  OnlineTreeStrategy(const net::RootedTree& rooted, int numObjects,
                     net::NodeId initialLocation,
                     const OnlineOptions& options = {});

  /// Serves one request, updating loads and the copy set.
  void serve(const Request& request);

  /// Shard-serving entry point for the epoch server: serves `requests`
  /// (each of which must target object `x`, in arrival order) against x's
  /// copy-subtree state, accumulating load into the caller's `loads`
  /// instead of the strategy-owned map. Calls for distinct objects touch
  /// disjoint state and only read the shared tree, so the epoch server
  /// may run them concurrently — one worker per object stripe, each with
  /// its own scratch and LoadMap.
  ///
  /// When `acc` is non-null and the shard is at least
  /// core::kFlatLoadCutover requests (the adaptive cutover — tiny shards
  /// stay on the per-edge walk), service and update paths are charged
  /// through the difference-counting accumulator and flushed into
  /// `loads` before returning. Either route produces bit-identical
  /// integer loads; `acc` must be per-worker, built over this strategy's
  /// flatView().
  ShardStats serveShard(ObjectId x, std::span<const Request> requests,
                        core::LoadMap& loads, ServeScratch& scratch,
                        core::FlatLoadAccumulator* acc = nullptr);

  /// Replaces x's copy set with `locations` (non-empty; must form a
  /// connected subtree, e.g. a nibble copy set) and resets x's read
  /// counters: the dynamic-to-static handoff of the epoch server's
  /// re-placement pass. Migration traffic is accounted by the caller.
  /// Per-object like serveShard, so safe to call concurrently for
  /// distinct objects.
  void resetCopySet(ObjectId x, std::span<const net::NodeId> locations);

  /// Loads accumulated so far (service + update + migration traffic).
  [[nodiscard]] const core::LoadMap& loads() const noexcept { return loads_; }

  /// The shared preorder flattening of the tree; per-worker
  /// FlatLoadAccumulators for serveShard are built over this view.
  [[nodiscard]] const core::FlatTreeView& flatView() const noexcept {
    return flat_;
  }

  /// Current copy locations of `x`, ascending.
  [[nodiscard]] std::vector<net::NodeId> copySet(ObjectId x) const;

  /// Writes the per-object counter state (copy locations in incremental
  /// order, anchor, nonzero read counters) as whitespace-separated text.
  /// restoreState on a freshly built strategy over the same topology
  /// reproduces bit-identical serving from that point on.
  void serializeState(std::ostream& os) const;

  /// Restores state written by serializeState; throws
  /// std::invalid_argument on malformed text or out-of-range values.
  void restoreState(std::istream& in);

  /// Total number of replications performed (copy-set extensions).
  [[nodiscard]] Count replications() const noexcept { return replications_; }
  /// Total number of copy deletions from write contractions.
  [[nodiscard]] Count invalidations() const noexcept {
    return invalidations_;
  }

 private:
  struct ObjectState {
    std::vector<char> hasCopy;        // per node
    std::vector<Count> readCounter;   // per edge
    /// Current copy locations, maintained incrementally (unordered) so
    /// write broadcasts and contractions never scan the node range.
    std::vector<net::NodeId> locations;
    /// Edges whose readCounter is nonzero — contraction resets only
    /// these instead of refilling the whole per-edge array.
    std::vector<net::EdgeId> countedEdges;
    /// A node guaranteed to hold a copy; the entry-point walk targets it.
    net::NodeId anchor = net::kInvalidNode;
    int copyCount = 0;
  };

  /// Entry point of `v` into the copy subtree of `state` (nearest copy):
  /// the copy set is connected, so its gate is the first copy node on
  /// the v→anchor path — found by a depth-equalising walk in O(path
  /// length), where the old BFS explored the whole ball around v.
  [[nodiscard]] net::NodeId entryPoint(const ObjectState& state,
                                       net::NodeId v,
                                       ServeScratch& scratch) const;

  /// Serves one request against `state`, charging `loads` and `stats`;
  /// `acc` non-null defers path charges through difference counting.
  void serveOne(ObjectState& state, const Request& request,
                core::LoadMap& loads, ShardStats& stats,
                ServeScratch& scratch,
                core::FlatLoadAccumulator* acc) const;

  const net::RootedTree* rooted_;
  core::FlatTreeView flat_;
  OnlineOptions options_;
  std::vector<ObjectState> objects_;
  core::LoadMap loads_;
  Count replications_ = 0;
  Count invalidations_ = 0;
  ServeScratch scratch_;  ///< backs the sequential serve() path
};

}  // namespace hbn::dynamic
