// Competitive-ratio harness for the online policies.
//
// Builds online request sequences (randomised interleavings of a static
// workload, or adversarial read/write alternations), runs them through
// any registered OnlinePolicy, and compares the realised congestion
// against the offline benchmark: the analytic congestion lower bound of
// the aggregated frequencies (a lower bound even on the optimal
// *static* placement, hence on any offline strategy that must keep at
// least one copy).
#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "hbn/dynamic/online_policy.h"
#include "hbn/util/rng.h"
#include "hbn/workload/workload.h"

namespace hbn::dynamic {

/// The true online-vs-offline congestion ratio, with the zero lower
/// bound guarded explicitly (dividing by max(LB, 1) would silently
/// deflate ratios whenever the bound is sub-1): 1 when both are zero
/// (trivially optimal), +inf when only the bound is. Shared by the
/// competitive harness and the serving engine's epoch log.
[[nodiscard]] inline double competitiveRatio(double onlineCongestion,
                                             double offlineLowerBound) {
  if (offlineLowerBound > 0.0) return onlineCongestion / offlineLowerBound;
  return onlineCongestion == 0.0 ? 1.0
                                 : std::numeric_limits<double>::infinity();
}

/// Stable object-bucketing (CSR): scatters `requests` into `bucketed`
/// grouped by object id with per-object arrival order preserved, and
/// fills `offsets` so object x's run is
/// bucketed[offsets[x], offsets[x+1]). `offsets` must have
/// numObjects + 1 entries and `bucketed` requests.size() entries; every
/// request's object id must lie in [0, numObjects). Allocation-free —
/// shared by the epoch server's per-epoch sharding, the competitive
/// harness, and the load-engine benchmark.
void bucketRequestsByObject(std::span<const Request> requests,
                            int numObjects,
                            std::span<std::size_t> offsets,
                            std::span<Request> bucketed);

/// Flattens a static workload into a uniformly shuffled request sequence.
[[nodiscard]] std::vector<Request> sequenceFromWorkload(
    const workload::Workload& load, util::Rng& rng);

/// Adversarial sequence: alternating read bursts from one subtree and
/// writes from another, designed to force replicate/invalidate churn.
[[nodiscard]] std::vector<Request> makePingPongSequence(
    const net::Tree& tree, int numObjects, int roundsPerObject,
    Count readsPerBurst, util::Rng& rng);

/// Outcome of one competitive run.
struct CompetitiveResult {
  double onlineCongestion = 0.0;
  double offlineLowerBound = 0.0;
  /// The true ratio onlineCongestion / offlineLowerBound; 1 when both
  /// are zero (trivially optimal), +inf when only the bound is zero.
  double ratio = 0.0;
  Count replications = 0;
  Count invalidations = 0;
};

/// Runs `requests` online through the policy selected by
/// `policySpec` (OnlinePolicyRegistry grammar) and evaluates against
/// the offline bound. Throws std::invalid_argument for unknown policy
/// names or options.
[[nodiscard]] CompetitiveResult runCompetitive(
    const net::RootedTree& rooted, int numObjects,
    const std::vector<Request>& requests, const std::string& policySpec);

/// Counter-scheme convenience overload: OnlineOptions rendered as the
/// equivalent "tree-counters:threshold=D,contract=B" spec.
[[nodiscard]] CompetitiveResult runCompetitive(
    const net::RootedTree& rooted, int numObjects,
    const std::vector<Request>& requests, const OnlineOptions& options = {});

}  // namespace hbn::dynamic
