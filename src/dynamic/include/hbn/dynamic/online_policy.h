// The unified online-policy engine.
//
// The paper's dynamic model (§4) and the FOCS'97 counter-based tree
// strategy it points to (§1.3) describe a *family* of online
// data-management policies. This header is the online twin of the
// offline strategy engine (hbn/engine/strategy.h):
//
//   PlacementStrategy : StrategyRegistry == OnlinePolicy : OnlinePolicyRegistry
//
// A policy owns the per-object copy configuration and serves
// object-bucketed request shards against it; every serving surface
// (EpochServer, the competitive harness, hbn_serve, the e14 bench)
// selects a policy by the same `name[:key=value,...]` spec grammar the
// strategy and experiment registries use (engine::splitSpec /
// engine::StrategyOptions — one parser, one error vocabulary).
//
// Built-in policies:
//   tree-counters     the FOCS'97 counter scheme (replicate towards
//                     readers, invalidate on writes) — wraps
//                     OnlineTreeStrategy; options threshold=D,contract=B
//   static            serve from a frozen placement recomputed only at
//                     §4 drift handoffs by any registered
//                     PlacementStrategy: `static:placement=<spec>`
//                     composes the two registries
//   full-replication  a copy on every processor; reads are local, every
//                     write broadcasts over the whole processor Steiner
//                     tree (lower-bound foil for write traffic)
//   owner-only        a single fixed copy, no replication — every
//                     request pays the path to the owner (upper-bound
//                     foil for read traffic)
//   adaptive          per-object meta-policy: scores member policies
//                     online by shadow-serving every shard through each
//                     of them and routes each object to the cheapest,
//                     hot-swapping at epoch boundaries through the §4
//                     handoff seam — `adaptive:members=<spec>+<spec>,
//                     window=<epochs>` (hbn/dynamic/adaptive_policy.h)
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "hbn/core/placement.h"
#include "hbn/dynamic/online_strategy.h"
#include "hbn/engine/registry.h"

namespace hbn::dynamic {

/// One in-flight §4 dynamic-to-static handoff: the re-placement a
/// policy computed (or will compute lazily) from a frozen snapshot of
/// the aggregated request frequencies, queried one object at a time.
///
/// This is the seam the pipelined epoch server migrates through: rather
/// than materialising the whole handoff placement inside the drift
/// epoch (the barrier-mode stop-the-world lump), the server keeps the
/// pass pending and asks for `target(x)` when object x is next touched.
/// Contract:
///   - target(x, w) is deterministic in x, independent of worker count
///     and call order, and bit-identical to row x of
///     OnlinePolicy::handoffPlacement on the same snapshot — that
///     equivalence is what keeps lazy and barrier application
///     bit-identical in aggregate.
///   - Calls for distinct objects are safe concurrently; `worker`
///     selects the caller's scratch slot and must be < the `workers`
///     passed to beginHandoff.
///   - Snapshot stability is per ROW, not per matrix: the server only
///     queries target(x) while x's frequency row is still bit-equal to
///     its trigger-time value (epochs aggregate after they serve, and a
///     touched object applies its passes before new traffic lands in
///     its row). A pass that reads only row x at target() time — the
///     nibble pass — may therefore hold the server's live matrix with
///     no copy at all; a pass that reads other rows later must freeze
///     its own copy inside beginHandoff.
class HandoffPass {
 public:
  virtual ~HandoffPass() = default;

  /// Migration target (copy locations) for object `x`.
  [[nodiscard]] virtual std::vector<net::NodeId> target(ObjectId x,
                                                        int worker) = 0;
};

/// Abstract online data-management policy: per-object copy
/// configuration plus shard serving. The serving contract mirrors
/// OnlineTreeStrategy::serveShard — calls for distinct objects touch
/// disjoint mutable state and only read shared immutable structure, so
/// the epoch server may run them concurrently (one worker per object
/// stripe, each with its own scratch, LoadMap, and accumulator) and the
/// merged result is bit-identical for 1 vs N threads.
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  /// Canonical registry name (e.g. "tree-counters").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Canonical spec string that reconstructs this policy's configuration
  /// through the registry: `create(p.spec())` builds an equivalently
  /// configured policy, and rendering is a fixed point —
  /// `create(p.spec())->spec() == p.spec()` (checked for every
  /// registered policy by tests/policy_conformance_test.cpp). Policies
  /// render only non-default options, which keeps the spec minimal and,
  /// where possible, comma-free — the form composed specs (adaptive
  /// members, static placements) can embed.
  [[nodiscard]] virtual std::string spec() const {
    return std::string(name());
  }

  /// Serves `requests` (each targeting object `x`, in arrival order)
  /// against x's copy configuration, accumulating exact integer loads
  /// into the caller's `loads`. When `acc` is non-null, path charges
  /// may be batched through the difference-counting accumulator (built
  /// over this policy's flatView()); either route is bit-identical.
  virtual ShardStats serveShard(ObjectId x, std::span<const Request> requests,
                                core::LoadMap& loads, ServeScratch& scratch,
                                core::FlatLoadAccumulator* acc = nullptr) = 0;

  /// Current copy locations of `x`, ascending.
  [[nodiscard]] virtual std::vector<net::NodeId> copySet(ObjectId x) const = 0;

  /// The shared preorder flattening of the tree; per-worker
  /// FlatLoadAccumulators are built over this view.
  [[nodiscard]] virtual const core::FlatTreeView& flatView()
      const noexcept = 0;

  /// Whether the §4 dynamic-to-static handoff applies: policies that
  /// own a movable copy configuration return true and must implement
  /// handoffPlacement/resetCopySet; fixed-configuration policies
  /// (full-replication, owner-only) return false and the epoch server
  /// skips its drift pass entirely.
  [[nodiscard]] virtual bool migratable() const noexcept { return true; }

  /// Whether the policy itself is asking for a §4 handoff pass at the
  /// next epoch boundary, independent of the server's drift trigger.
  /// The epoch server polls this after every epoch (serve thread,
  /// workers joined) and begins a pass when it returns true — the seam
  /// a meta-policy (`adaptive`) uses to commit per-object routing
  /// switches it decided while serving. Only consulted when
  /// migratable(); the default never asks.
  [[nodiscard]] virtual bool wantsHandoff() const { return false; }

  /// The placement this policy wants to migrate to, computed from the
  /// aggregated request frequencies (the §4 handoff target). Only
  /// called when migratable(). `threads` is the worker budget; the
  /// result must be thread-count independent.
  [[nodiscard]] virtual core::Placement handoffPlacement(
      const workload::Workload& aggregated, int threads) = 0;

  /// Starts a §4 handoff against `aggregated` — the caller's matrix as
  /// of the trigger, shared without a copy. The caller guarantees only
  /// the per-row stability documented on HandoffPass: rows the pass
  /// will be asked about are unchanged at target() time. Passes that
  /// need more (whole-matrix reads after the trigger) copy their own
  /// snapshot here. `workers` bounds the scratch slots target() may be
  /// called with. Only called when migratable(). The default wraps
  /// handoffPlacement eagerly (reading the matrix now, which is always
  /// safe); policies with a cheap per-object placement (tree-counters'
  /// nibble) override it with a lazy pass so the pipelined server never
  /// pays a whole-placement lump.
  [[nodiscard]] virtual std::unique_ptr<HandoffPass> beginHandoff(
      std::shared_ptr<const workload::Workload> aggregated, int workers);

  /// Replaces x's copy configuration with `locations` (the handoff
  /// migration; traffic is accounted by the caller). Per-object like
  /// serveShard, so safe to call concurrently for distinct objects.
  /// Only called when migratable().
  virtual void resetCopySet(ObjectId x,
                            std::span<const net::NodeId> locations) = 0;

  /// Diagnostics of the policy (configuration knobs, handoff counts,
  /// copy-node totals, ...) mirroring engine::Context::metrics; keys
  /// are "policy.<name>". Serving surfaces attach these to their
  /// reports so an emitted JSON file can say what produced it.
  [[nodiscard]] virtual std::map<std::string, double> metrics() const {
    return {};
  }

  /// Writes the policy's mutable serving state — copy sets, counters,
  /// scores, handoff bookkeeping — as whitespace-separated text, the
  /// policy-state block of an epoch-boundary checkpoint
  /// (hbn/serve/checkpoint.h). Contract: restoreState on a FRESHLY
  /// built policy with an identical spec over the same topology
  /// reproduces bit-identical serving from the serialized point on
  /// (property-checked for every registered policy by
  /// tests/checkpoint_test.cpp). The policy must be quiescent — no
  /// in-flight HandoffPass — which the epoch server guarantees by
  /// draining all passes before checkpointing; a non-quiescent policy
  /// throws std::logic_error.
  virtual void serializeState(std::ostream& os) const = 0;

  /// Restores state written by serializeState on an identically
  /// configured policy; throws std::invalid_argument on malformed,
  /// truncated, or out-of-range input.
  virtual void restoreState(std::istream& in) = 0;
};

/// A parsed policy spec, ready to build per-server instances. Splitting
/// creation in two lets one spec build the several servers a
/// determinism digest or a bench sweep needs.
class OnlinePolicyFactory {
 public:
  virtual ~OnlinePolicyFactory() = default;

  /// Builds a policy over `rooted` (must outlive the policy) with one
  /// initial copy per object on `initialLocation`.
  [[nodiscard]] virtual std::unique_ptr<OnlinePolicy> build(
      const net::RootedTree& rooted, int numObjects,
      net::NodeId initialLocation) const = 0;
};

/// Registry metadata shown by --list-policies / usage text.
struct OnlinePolicyInfo {
  std::string name;         ///< canonical name
  std::string summary;      ///< one-line description
  std::string optionsHelp;  ///< "threshold=D,contract=B" style, may be empty
};

/// Name→factory registry for online policies; the online twin of
/// StrategyRegistry, sharing the SpecRegistry machinery, spec syntax,
/// and option parser.
class OnlinePolicyRegistry
    : public engine::SpecRegistry<OnlinePolicyFactory, OnlinePolicyInfo> {
 public:
  OnlinePolicyRegistry() : SpecRegistry("policy") {}

  /// The process-wide registry, pre-populated with every built-in
  /// policy.
  [[nodiscard]] static OnlinePolicyRegistry& global();

  /// Multi-line help text enumerating policies and their options.
  [[nodiscard]] std::string helpText() const;
};

/// Applies one handoff target to object `x`: compares the policy's
/// current copy set to `target` (both ascending, so equality is
/// positional), charges Steiner(current ∪ target) migration traffic
/// into `migration` through `acc` when they differ, and resets the copy
/// set either way (policies may commit bookkeeping in resetCopySet even
/// for a no-move target — e.g. adaptive flipping an object between
/// members whose copy sets coincide). This is the exact per-object §4
/// migration step; EpochServer's lazy application and the shard
/// worker's barrier application both route through it so their charged
/// traffic is bit-identical. Per-object like resetCopySet: safe to call
/// concurrently for distinct objects.
void applyHandoffTarget(OnlinePolicy& policy, ObjectId x,
                        std::span<const net::NodeId> target,
                        core::FlatLoadAccumulator& acc,
                        core::LoadMap& migration);

/// Renders OnlineOptions as the equivalent tree-counters spec
/// ("tree-counters:threshold=D,contract=0|1") — the bridge legacy
/// OnlineOptions call sites (CLI --threshold, the OnlineOptions
/// runCompetitive overload) use to reach the registry.
[[nodiscard]] std::string treeCountersSpec(const OnlineOptions& options);

namespace detail {
/// Implemented in online_policy.cpp; wires every built-in policy into
/// the registry that OnlinePolicyRegistry::global() hands out.
void registerBuiltinPolicies(OnlinePolicyRegistry& registry);
}  // namespace detail

}  // namespace hbn::dynamic
