#include "hbn/dynamic/online_strategy.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "hbn/net/steiner.h"

namespace hbn::dynamic {

OnlineTreeStrategy::OnlineTreeStrategy(const net::RootedTree& rooted,
                                       int numObjects,
                                       net::NodeId initialLocation,
                                       const OnlineOptions& options)
    : rooted_(&rooted),
      flat_(rooted),
      options_(options),
      loads_(rooted.tree().edgeCount()) {
  if (numObjects < 1) {
    throw std::invalid_argument("OnlineTreeStrategy: numObjects >= 1");
  }
  if (options.replicationThreshold < 1) {
    throw std::invalid_argument(
        "OnlineTreeStrategy: replicationThreshold >= 1");
  }
  const auto n = static_cast<std::size_t>(rooted.tree().nodeCount());
  const auto e = static_cast<std::size_t>(rooted.tree().edgeCount());
  if (initialLocation < 0 ||
      initialLocation >= rooted.tree().nodeCount()) {
    throw std::out_of_range("OnlineTreeStrategy: initial location");
  }
  objects_.resize(static_cast<std::size_t>(numObjects));
  for (auto& state : objects_) {
    state.hasCopy.assign(n, 0);
    state.readCounter.assign(e, 0);
    state.hasCopy[static_cast<std::size_t>(initialLocation)] = 1;
    state.locations.assign(1, initialLocation);
    state.anchor = initialLocation;
    state.copyCount = 1;
  }
}

net::NodeId OnlineTreeStrategy::entryPoint(const ObjectState& state,
                                           net::NodeId v,
                                           ServeScratch& scratch) const {
  // The copy set is a connected subtree, so its gate (unique nearest copy
  // node to v) lies on every path from v into the set — in particular on
  // the v→anchor path. Walk that path in order and return the first copy
  // node: O(path length), where the old BFS paid the whole ball around v.
  if (state.hasCopy[static_cast<std::size_t>(v)]) return v;
  net::NodeId a = v;
  net::NodeId b = state.anchor;
  const core::FlatTreeView::NodeStep* sa = &flat_.step(a);
  const core::FlatTreeView::NodeStep* sb = &flat_.step(b);
  scratch.descent.clear();
  while (sa->depth > sb->depth) {
    a = sa->parent;
    sa = &flat_.step(a);
    if (state.hasCopy[static_cast<std::size_t>(a)]) return a;
  }
  while (sb->depth > sa->depth) {
    scratch.descent.push_back(b);
    b = sb->parent;
    sb = &flat_.step(b);
  }
  while (a != b) {
    a = sa->parent;
    sa = &flat_.step(a);
    if (state.hasCopy[static_cast<std::size_t>(a)]) return a;
    scratch.descent.push_back(b);
    b = sb->parent;
    sb = &flat_.step(b);
  }
  for (auto it = scratch.descent.rbegin(); it != scratch.descent.rend();
       ++it) {
    if (state.hasCopy[static_cast<std::size_t>(*it)]) return *it;
  }
  throw std::logic_error("entryPoint: copy set empty");
}

void OnlineTreeStrategy::serveOne(ObjectState& state, const Request& request,
                                  core::LoadMap& loads, ShardStats& stats,
                                  ServeScratch& scratch,
                                  core::FlatLoadAccumulator* acc) const {
  const net::NodeId origin = request.origin;

  if (!request.isWrite) {
    if (state.hasCopy[static_cast<std::size_t>(origin)]) {
      return;  // local read: free, no counters move
    }
    // One fused walk finds the entry point AND charges the service path:
    // the copy subtree's gate is the first copy node on the origin→anchor
    // path, so walking that path in order — charging each crossed edge
    // and stopping at the first copy — touches exactly the origin→entry
    // edges. No LCA query, no separate entry-point pre-walk, no node
    // list: a two-pointer depth-equalising ascent with the origin-side
    // nodes kept for the cascade and the anchor side collected for the
    // in-order descent scan.
    // An edge re-entered after a cascade reset is pushed again, so the
    // list may hold duplicates; they are bounded by the replication
    // count (≤ n-1 per object between contractions, which clear the
    // list), and contraction's zeroing is idempotent.
    const auto bump = [&](net::EdgeId edge) {
      loads.addEdgeLoad(edge, 1);
      if (state.readCounter[static_cast<std::size_t>(edge)] == 0) {
        state.countedEdges.push_back(edge);
      }
      ++state.readCounter[static_cast<std::size_t>(edge)];
    };
    // Extends the copy set across `edge` into `to` if the threshold
    // fired; false ends the cascade.
    const auto cascade = [&](net::NodeId to, net::EdgeId edge) {
      if (state.hasCopy[static_cast<std::size_t>(to)]) return true;
      if (state.readCounter[static_cast<std::size_t>(edge)] <
          options_.replicationThreshold) {
        return false;
      }
      // Replicate across: one object migration message.
      loads.addEdgeLoad(edge, 1);
      state.hasCopy[static_cast<std::size_t>(to)] = 1;
      state.locations.push_back(to);
      ++state.copyCount;
      ++stats.replications;
      state.readCounter[static_cast<std::size_t>(edge)] = 0;
      return true;
    };

    scratch.upPath.clear();    // origin-side nodes below the entry/lca
    scratch.descent.clear();   // anchor-side nodes, anchor first
    net::NodeId u = origin;
    net::NodeId b = state.anchor;
    const core::FlatTreeView::NodeStep* su = &flat_.step(u);
    const core::FlatTreeView::NodeStep* sb = &flat_.step(b);
    net::NodeId entry = net::kInvalidNode;
    while (su->depth > sb->depth) {
      bump(su->parentEdge);
      scratch.upPath.push_back(u);
      u = su->parent;
      su = &flat_.step(u);
      if (state.hasCopy[static_cast<std::size_t>(u)]) {
        entry = u;
        break;
      }
    }
    if (entry == net::kInvalidNode) {
      while (sb->depth > su->depth) {
        scratch.descent.push_back(b);
        b = sb->parent;
        sb = &flat_.step(b);
      }
      while (u != b) {
        bump(su->parentEdge);
        scratch.upPath.push_back(u);
        u = su->parent;
        su = &flat_.step(u);
        if (state.hasCopy[static_cast<std::size_t>(u)]) {
          entry = u;
          break;
        }
        scratch.descent.push_back(b);
        b = sb->parent;
        sb = &flat_.step(b);
      }
    }
    if (entry == net::kInvalidNode) {
      // No copy through the lca (== u): continue down toward the anchor,
      // in path order; the anchor itself holds a copy, so this finds the
      // entry. Then cascade back up entry→lca via parent pointers.
      const net::NodeId meet = u;
      for (std::size_t j = scratch.descent.size(); j-- > 0;) {
        const net::NodeId x = scratch.descent[j];
        bump(flat_.step(x).parentEdge);
        if (state.hasCopy[static_cast<std::size_t>(x)]) {
          entry = x;
          break;
        }
      }
      if (entry == net::kInvalidNode) {
        throw std::logic_error("serveOne: copy set empty");
      }
      net::NodeId from = entry;
      while (from != meet) {
        const core::FlatTreeView::NodeStep& sf = flat_.step(from);
        if (!cascade(sf.parent, sf.parentEdge)) return;
        from = sf.parent;
      }
    }
    // Descend the origin side from just below the entry/lca back to the
    // reader, extending the copy set while the thresholds hold.
    for (auto it = scratch.upPath.rbegin(); it != scratch.upPath.rend();
         ++it) {
      if (!cascade(*it, flat_.step(*it).parentEdge)) return;
    }
    return;
  }

  const net::NodeId entry = entryPoint(state, origin, scratch);

  // WRITE: origin→entry path plus broadcast over the copy subtree. No
  // counters move, so the path charge needs no walk at all when batched.
  if (origin != entry) {
    if (acc) {
      acc->chargePath(origin, entry, 1);
    } else {
      const net::NodeId a = flat_.lca(origin, entry);
      for (net::NodeId x = origin; x != a; x = rooted_->parent(x)) {
        loads.addEdgeLoad(rooted_->parentEdge(x), 1);
      }
      for (net::NodeId x = entry; x != a; x = rooted_->parent(x)) {
        loads.addEdgeLoad(rooted_->parentEdge(x), 1);
      }
    }
  }
  if (state.copyCount > 1) {
    // The copy set is a connected subtree (class invariant), so its
    // Steiner tree is the set itself: exactly the parent edges of copies
    // whose parent also holds a copy — O(|copies|), no counting passes,
    // where the seed engine ran an O(n) location scan plus a
    // vector-allocating steinerEdges call per write.
    for (const net::NodeId v : state.locations) {
      const net::NodeId p = rooted_->parent(v);
      if (p != net::kInvalidNode &&
          state.hasCopy[static_cast<std::size_t>(p)]) {
        loads.addEdgeLoad(rooted_->parentEdge(v), 1);
      }
    }
    if (options_.contractOnWrite) {
      // Invalidate every replica except the writer-side entry copy.
      for (const net::NodeId v : state.locations) {
        if (v != entry) {
          state.hasCopy[static_cast<std::size_t>(v)] = 0;
          ++stats.invalidations;
        }
      }
      state.locations.assign(1, entry);
      state.anchor = entry;
      state.copyCount = 1;
      for (const net::EdgeId e : state.countedEdges) {
        state.readCounter[static_cast<std::size_t>(e)] = 0;
      }
      state.countedEdges.clear();
    }
  }
}

void OnlineTreeStrategy::serve(const Request& request) {
  if (request.object < 0 ||
      request.object >= static_cast<ObjectId>(objects_.size())) {
    throw std::out_of_range("serve: object id");
  }
  ObjectState& state = objects_[static_cast<std::size_t>(request.object)];
  ShardStats stats;
  serveOne(state, request, loads_, stats, scratch_, nullptr);
  replications_ += stats.replications;
  invalidations_ += stats.invalidations;
}

ShardStats OnlineTreeStrategy::serveShard(ObjectId x,
                                          std::span<const Request> requests,
                                          core::LoadMap& loads,
                                          ServeScratch& scratch,
                                          core::FlatLoadAccumulator* acc) {
  if (x < 0 || x >= static_cast<ObjectId>(objects_.size())) {
    throw std::out_of_range("serveShard: object id");
  }
  // Adaptive cutover: a tiny shard's flush bookkeeping outweighs the few
  // per-edge walks it would save, so it stays on the legacy route.
  if (acc && requests.size() < core::kFlatLoadCutover) acc = nullptr;
  ObjectState& state = objects_[static_cast<std::size_t>(x)];
  ShardStats stats;
  for (const Request& request : requests) {
    if (request.object != x) {
      throw std::invalid_argument("serveShard: request targets wrong object");
    }
    serveOne(state, request, loads, stats, scratch, acc);
  }
  if (acc) acc->flush(loads);
  return stats;
}

void OnlineTreeStrategy::resetCopySet(ObjectId x,
                                      std::span<const net::NodeId> locations) {
  if (x < 0 || x >= static_cast<ObjectId>(objects_.size())) {
    throw std::out_of_range("resetCopySet: object id");
  }
  if (locations.empty()) {
    throw std::invalid_argument("resetCopySet: empty copy set");
  }
  ObjectState& state = objects_[static_cast<std::size_t>(x)];
  for (const net::NodeId v : state.locations) {
    state.hasCopy[static_cast<std::size_t>(v)] = 0;
  }
  state.locations.clear();
  state.copyCount = 0;
  for (const net::NodeId v : locations) {
    if (v < 0 || v >= rooted_->tree().nodeCount()) {
      throw std::out_of_range("resetCopySet: location");
    }
    if (!state.hasCopy[static_cast<std::size_t>(v)]) {
      state.hasCopy[static_cast<std::size_t>(v)] = 1;
      state.locations.push_back(v);
      ++state.copyCount;
    }
  }
  state.anchor = state.locations.front();
  for (const net::EdgeId e : state.countedEdges) {
    state.readCounter[static_cast<std::size_t>(e)] = 0;
  }
  state.countedEdges.clear();
}

void OnlineTreeStrategy::serializeState(std::ostream& os) const {
  // One line per object: locations in their incremental (insertion)
  // order so the restored vector is positionally identical, the anchor,
  // then the nonzero read counters as (edge, count) pairs. countedEdges
  // may hold duplicates and already-reset edges in a live strategy;
  // emitting the deduplicated nonzero set restores identical counter
  // VALUES, and contraction's zeroing is idempotent over either list.
  os << "objects " << objects_.size() << '\n';
  for (std::size_t x = 0; x < objects_.size(); ++x) {
    const ObjectState& state = objects_[x];
    os << x << ' ' << state.anchor << ' ' << state.locations.size();
    for (const net::NodeId v : state.locations) os << ' ' << v;
    std::size_t counted = 0;
    for (std::size_t e = 0; e < state.readCounter.size(); ++e) {
      if (state.readCounter[e] != 0) ++counted;
    }
    os << ' ' << counted;
    for (std::size_t e = 0; e < state.readCounter.size(); ++e) {
      if (state.readCounter[e] != 0) {
        os << ' ' << e << ' ' << state.readCounter[e];
      }
    }
    os << '\n';
  }
}

void OnlineTreeStrategy::restoreState(std::istream& in) {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument("tree-counters state: " + why);
  };
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "objects" || count != objects_.size()) {
    fail("bad objects header");
  }
  const int nodeCount = rooted_->tree().nodeCount();
  const int edgeCount = rooted_->tree().edgeCount();
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t x = 0;
    net::NodeId anchor = net::kInvalidNode;
    std::size_t nLoc = 0;
    if (!(in >> x >> anchor >> nLoc) || x != i) fail("bad object line");
    if (nLoc < 1 || nLoc > static_cast<std::size_t>(nodeCount)) {
      fail("copy count out of range");
    }
    ObjectState& state = objects_[x];
    for (const net::NodeId v : state.locations) {
      state.hasCopy[static_cast<std::size_t>(v)] = 0;
    }
    state.locations.clear();
    for (std::size_t j = 0; j < nLoc; ++j) {
      net::NodeId v = net::kInvalidNode;
      if (!(in >> v) || v < 0 || v >= nodeCount) fail("location out of range");
      if (state.hasCopy[static_cast<std::size_t>(v)]) {
        fail("duplicate copy location");
      }
      state.hasCopy[static_cast<std::size_t>(v)] = 1;
      state.locations.push_back(v);
    }
    state.copyCount = static_cast<int>(nLoc);
    if (anchor < 0 || anchor >= nodeCount ||
        !state.hasCopy[static_cast<std::size_t>(anchor)]) {
      fail("anchor holds no copy");
    }
    state.anchor = anchor;
    for (const net::EdgeId e : state.countedEdges) {
      state.readCounter[static_cast<std::size_t>(e)] = 0;
    }
    state.countedEdges.clear();
    std::size_t counted = 0;
    if (!(in >> counted) || counted > static_cast<std::size_t>(edgeCount)) {
      fail("bad counter count");
    }
    for (std::size_t j = 0; j < counted; ++j) {
      net::EdgeId e = -1;
      Count value = 0;
      if (!(in >> e >> value) || e < 0 || e >= edgeCount || value < 1) {
        fail("bad counter entry");
      }
      if (state.readCounter[static_cast<std::size_t>(e)] != 0) {
        fail("duplicate counter edge");
      }
      state.readCounter[static_cast<std::size_t>(e)] = value;
      state.countedEdges.push_back(e);
    }
  }
}

std::vector<net::NodeId> OnlineTreeStrategy::copySet(ObjectId x) const {
  const ObjectState& state = objects_.at(static_cast<std::size_t>(x));
  std::vector<net::NodeId> locations(state.locations.begin(),
                                     state.locations.end());
  std::sort(locations.begin(), locations.end());
  return locations;
}

}  // namespace hbn::dynamic
