#include "hbn/dynamic/online_strategy.h"

#include <algorithm>
#include <stdexcept>

#include "hbn/net/steiner.h"

namespace hbn::dynamic {

OnlineTreeStrategy::OnlineTreeStrategy(const net::RootedTree& rooted,
                                       int numObjects,
                                       net::NodeId initialLocation,
                                       const OnlineOptions& options)
    : rooted_(&rooted),
      options_(options),
      loads_(rooted.tree().edgeCount()) {
  if (numObjects < 1) {
    throw std::invalid_argument("OnlineTreeStrategy: numObjects >= 1");
  }
  if (options.replicationThreshold < 1) {
    throw std::invalid_argument(
        "OnlineTreeStrategy: replicationThreshold >= 1");
  }
  const auto n = static_cast<std::size_t>(rooted.tree().nodeCount());
  const auto e = static_cast<std::size_t>(rooted.tree().edgeCount());
  if (initialLocation < 0 ||
      initialLocation >= rooted.tree().nodeCount()) {
    throw std::out_of_range("OnlineTreeStrategy: initial location");
  }
  objects_.resize(static_cast<std::size_t>(numObjects));
  for (auto& state : objects_) {
    state.hasCopy.assign(n, 0);
    state.readCounter.assign(e, 0);
    state.hasCopy[static_cast<std::size_t>(initialLocation)] = 1;
    state.copyCount = 1;
  }
}

net::NodeId OnlineTreeStrategy::entryPoint(const ObjectState& state,
                                           net::NodeId v) const {
  // BFS from v until the first copy node: the copy set is connected, so
  // this is the unique entry point.
  if (state.hasCopy[static_cast<std::size_t>(v)]) return v;
  const net::Tree& tree = rooted_->tree();
  std::vector<char> seen(static_cast<std::size_t>(tree.nodeCount()), 0);
  std::vector<net::NodeId> queue{v};
  seen[static_cast<std::size_t>(v)] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const net::NodeId u = queue[head];
    if (state.hasCopy[static_cast<std::size_t>(u)]) return u;
    for (const net::HalfEdge& he : tree.neighbors(u)) {
      if (!seen[static_cast<std::size_t>(he.to)]) {
        seen[static_cast<std::size_t>(he.to)] = 1;
        queue.push_back(he.to);
      }
    }
  }
  throw std::logic_error("entryPoint: copy set empty");
}

void OnlineTreeStrategy::serve(const Request& request) {
  if (request.object < 0 ||
      request.object >= static_cast<ObjectId>(objects_.size())) {
    throw std::out_of_range("serve: object id");
  }
  const net::Tree& tree = rooted_->tree();
  ObjectState& state = objects_[static_cast<std::size_t>(request.object)];
  const net::NodeId origin = request.origin;
  const net::NodeId entry = entryPoint(state, origin);

  if (!request.isWrite) {
    // Service load on the origin→entry path; bump counters; replicate
    // across saturated edges adjacent to the copy set, cascading toward
    // the reader.
    const auto pathNodes = rooted_->pathNodes(entry, origin);
    for (std::size_t i = 1; i < pathNodes.size(); ++i) {
      // Edge between pathNodes[i-1] (closer to entry) and pathNodes[i].
      net::EdgeId edge = net::kInvalidEdge;
      for (const net::HalfEdge& he : tree.neighbors(pathNodes[i - 1])) {
        if (he.to == pathNodes[i]) {
          edge = he.edge;
          break;
        }
      }
      loads_.addEdgeLoad(edge, 1);
      ++state.readCounter[static_cast<std::size_t>(edge)];
    }
    // Cascade replication from the entry outwards while thresholds hold.
    for (std::size_t i = 1; i < pathNodes.size(); ++i) {
      const net::NodeId from = pathNodes[i - 1];
      const net::NodeId to = pathNodes[i];
      if (!state.hasCopy[static_cast<std::size_t>(from)]) break;
      if (state.hasCopy[static_cast<std::size_t>(to)]) continue;
      net::EdgeId edge = net::kInvalidEdge;
      for (const net::HalfEdge& he : tree.neighbors(from)) {
        if (he.to == to) {
          edge = he.edge;
          break;
        }
      }
      if (state.readCounter[static_cast<std::size_t>(edge)] <
          options_.replicationThreshold) {
        break;
      }
      // Replicate across: one object migration message.
      loads_.addEdgeLoad(edge, 1);
      state.hasCopy[static_cast<std::size_t>(to)] = 1;
      ++state.copyCount;
      ++replications_;
      state.readCounter[static_cast<std::size_t>(edge)] = 0;
    }
    return;
  }

  // WRITE: origin→entry path plus broadcast over the copy subtree.
  if (origin != entry) {
    rooted_->forEachPathEdge(origin, entry,
                             [&](net::EdgeId e) { loads_.addEdgeLoad(e, 1); });
  }
  if (state.copyCount > 1) {
    std::vector<net::NodeId> locations;
    for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
      if (state.hasCopy[static_cast<std::size_t>(v)]) {
        locations.push_back(v);
      }
    }
    const auto steiner = net::steinerEdges(*rooted_, locations);
    for (const net::EdgeId e : steiner) loads_.addEdgeLoad(e, 1);
    if (options_.contractOnWrite) {
      // Invalidate every replica except the writer-side entry copy.
      for (const net::NodeId v : locations) {
        if (v != entry) {
          state.hasCopy[static_cast<std::size_t>(v)] = 0;
          ++invalidations_;
        }
      }
      state.copyCount = 1;
      std::fill(state.readCounter.begin(), state.readCounter.end(), 0);
    }
  }
}

std::vector<net::NodeId> OnlineTreeStrategy::copySet(ObjectId x) const {
  const ObjectState& state = objects_.at(static_cast<std::size_t>(x));
  std::vector<net::NodeId> locations;
  for (net::NodeId v = 0; v < rooted_->tree().nodeCount(); ++v) {
    if (state.hasCopy[static_cast<std::size_t>(v)]) locations.push_back(v);
  }
  return locations;
}

}  // namespace hbn::dynamic
