#include "hbn/dynamic/online_strategy.h"

#include <algorithm>
#include <stdexcept>

#include "hbn/net/steiner.h"

namespace hbn::dynamic {

OnlineTreeStrategy::OnlineTreeStrategy(const net::RootedTree& rooted,
                                       int numObjects,
                                       net::NodeId initialLocation,
                                       const OnlineOptions& options)
    : rooted_(&rooted),
      options_(options),
      loads_(rooted.tree().edgeCount()) {
  if (numObjects < 1) {
    throw std::invalid_argument("OnlineTreeStrategy: numObjects >= 1");
  }
  if (options.replicationThreshold < 1) {
    throw std::invalid_argument(
        "OnlineTreeStrategy: replicationThreshold >= 1");
  }
  const auto n = static_cast<std::size_t>(rooted.tree().nodeCount());
  const auto e = static_cast<std::size_t>(rooted.tree().edgeCount());
  if (initialLocation < 0 ||
      initialLocation >= rooted.tree().nodeCount()) {
    throw std::out_of_range("OnlineTreeStrategy: initial location");
  }
  objects_.resize(static_cast<std::size_t>(numObjects));
  for (auto& state : objects_) {
    state.hasCopy.assign(n, 0);
    state.readCounter.assign(e, 0);
    state.hasCopy[static_cast<std::size_t>(initialLocation)] = 1;
    state.copyCount = 1;
  }
}

net::NodeId OnlineTreeStrategy::entryPoint(const ObjectState& state,
                                           net::NodeId v,
                                           ServeScratch& scratch) const {
  // BFS from v until the first copy node: the copy set is connected, so
  // this is the unique entry point. The visited set is stamp-versioned,
  // so repeated calls reuse the buffers without clearing them.
  if (state.hasCopy[static_cast<std::size_t>(v)]) return v;
  const net::Tree& tree = rooted_->tree();
  const auto n = static_cast<std::size_t>(tree.nodeCount());
  if (scratch.seenStamp.size() != n) {
    scratch.seenStamp.assign(n, 0);
    scratch.stamp = 0;
  }
  const std::uint32_t stamp = ++scratch.stamp;
  if (stamp == 0) {  // wrapped: restart the versioning
    scratch.seenStamp.assign(n, 0);
    scratch.stamp = 1;
  }
  scratch.queue.clear();
  scratch.queue.push_back(v);
  scratch.seenStamp[static_cast<std::size_t>(v)] = scratch.stamp;
  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    const net::NodeId u = scratch.queue[head];
    if (state.hasCopy[static_cast<std::size_t>(u)]) return u;
    for (const net::HalfEdge& he : tree.neighbors(u)) {
      if (scratch.seenStamp[static_cast<std::size_t>(he.to)] !=
          scratch.stamp) {
        scratch.seenStamp[static_cast<std::size_t>(he.to)] = scratch.stamp;
        scratch.queue.push_back(he.to);
      }
    }
  }
  throw std::logic_error("entryPoint: copy set empty");
}

void OnlineTreeStrategy::serveOne(ObjectState& state, const Request& request,
                                  core::LoadMap& loads, ShardStats& stats,
                                  ServeScratch& scratch) const {
  const net::NodeId origin = request.origin;
  const net::NodeId entry = entryPoint(state, origin, scratch);

  // Edge between adjacent path nodes a/b: the parent edge of the deeper
  // one. (RootedTree::forEachPathEdge is not used here — its internal
  // scratch is not safe for concurrent shards.)
  const auto edgeBetween = [&](net::NodeId a, net::NodeId b) {
    return rooted_->depth(a) > rooted_->depth(b) ? rooted_->parentEdge(a)
                                                 : rooted_->parentEdge(b);
  };

  if (!request.isWrite) {
    // Service load on the entry→origin path; bump counters; replicate
    // across saturated edges adjacent to the copy set, cascading toward
    // the reader.
    scratch.pathNodes.clear();
    const net::NodeId a = rooted_->lca(entry, origin);
    for (net::NodeId x = entry; x != a; x = rooted_->parent(x)) {
      scratch.pathNodes.push_back(x);
    }
    scratch.pathNodes.push_back(a);
    const std::size_t downStart = scratch.pathNodes.size();
    for (net::NodeId x = origin; x != a; x = rooted_->parent(x)) {
      scratch.pathNodes.push_back(x);
    }
    std::reverse(scratch.pathNodes.begin() +
                     static_cast<std::ptrdiff_t>(downStart),
                 scratch.pathNodes.end());

    for (std::size_t i = 1; i < scratch.pathNodes.size(); ++i) {
      const net::EdgeId edge =
          edgeBetween(scratch.pathNodes[i - 1], scratch.pathNodes[i]);
      loads.addEdgeLoad(edge, 1);
      ++state.readCounter[static_cast<std::size_t>(edge)];
    }
    // Cascade replication from the entry outwards while thresholds hold.
    for (std::size_t i = 1; i < scratch.pathNodes.size(); ++i) {
      const net::NodeId from = scratch.pathNodes[i - 1];
      const net::NodeId to = scratch.pathNodes[i];
      if (!state.hasCopy[static_cast<std::size_t>(from)]) break;
      if (state.hasCopy[static_cast<std::size_t>(to)]) continue;
      const net::EdgeId edge = edgeBetween(from, to);
      if (state.readCounter[static_cast<std::size_t>(edge)] <
          options_.replicationThreshold) {
        break;
      }
      // Replicate across: one object migration message.
      loads.addEdgeLoad(edge, 1);
      state.hasCopy[static_cast<std::size_t>(to)] = 1;
      ++state.copyCount;
      ++stats.replications;
      state.readCounter[static_cast<std::size_t>(edge)] = 0;
    }
    return;
  }

  // WRITE: origin→entry path plus broadcast over the copy subtree.
  if (origin != entry) {
    const net::NodeId a = rooted_->lca(origin, entry);
    for (net::NodeId x = origin; x != a; x = rooted_->parent(x)) {
      loads.addEdgeLoad(rooted_->parentEdge(x), 1);
    }
    for (net::NodeId x = entry; x != a; x = rooted_->parent(x)) {
      loads.addEdgeLoad(rooted_->parentEdge(x), 1);
    }
  }
  if (state.copyCount > 1) {
    scratch.locations.clear();
    const net::Tree& tree = rooted_->tree();
    for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
      if (state.hasCopy[static_cast<std::size_t>(v)]) {
        scratch.locations.push_back(v);
      }
    }
    const auto steiner = net::steinerEdges(*rooted_, scratch.locations);
    for (const net::EdgeId e : steiner) loads.addEdgeLoad(e, 1);
    if (options_.contractOnWrite) {
      // Invalidate every replica except the writer-side entry copy.
      for (const net::NodeId v : scratch.locations) {
        if (v != entry) {
          state.hasCopy[static_cast<std::size_t>(v)] = 0;
          ++stats.invalidations;
        }
      }
      state.copyCount = 1;
      std::fill(state.readCounter.begin(), state.readCounter.end(), 0);
    }
  }
}

void OnlineTreeStrategy::serve(const Request& request) {
  if (request.object < 0 ||
      request.object >= static_cast<ObjectId>(objects_.size())) {
    throw std::out_of_range("serve: object id");
  }
  ObjectState& state = objects_[static_cast<std::size_t>(request.object)];
  ShardStats stats;
  serveOne(state, request, loads_, stats, scratch_);
  replications_ += stats.replications;
  invalidations_ += stats.invalidations;
}

ShardStats OnlineTreeStrategy::serveShard(ObjectId x,
                                          std::span<const Request> requests,
                                          core::LoadMap& loads,
                                          ServeScratch& scratch) {
  if (x < 0 || x >= static_cast<ObjectId>(objects_.size())) {
    throw std::out_of_range("serveShard: object id");
  }
  ObjectState& state = objects_[static_cast<std::size_t>(x)];
  ShardStats stats;
  for (const Request& request : requests) {
    if (request.object != x) {
      throw std::invalid_argument("serveShard: request targets wrong object");
    }
    serveOne(state, request, loads, stats, scratch);
  }
  return stats;
}

void OnlineTreeStrategy::resetCopySet(ObjectId x,
                                      std::span<const net::NodeId> locations) {
  if (x < 0 || x >= static_cast<ObjectId>(objects_.size())) {
    throw std::out_of_range("resetCopySet: object id");
  }
  if (locations.empty()) {
    throw std::invalid_argument("resetCopySet: empty copy set");
  }
  ObjectState& state = objects_[static_cast<std::size_t>(x)];
  std::fill(state.hasCopy.begin(), state.hasCopy.end(), 0);
  state.copyCount = 0;
  for (const net::NodeId v : locations) {
    if (v < 0 || v >= rooted_->tree().nodeCount()) {
      throw std::out_of_range("resetCopySet: location");
    }
    if (!state.hasCopy[static_cast<std::size_t>(v)]) {
      state.hasCopy[static_cast<std::size_t>(v)] = 1;
      ++state.copyCount;
    }
  }
  std::fill(state.readCounter.begin(), state.readCounter.end(), 0);
}

std::vector<net::NodeId> OnlineTreeStrategy::copySet(ObjectId x) const {
  const ObjectState& state = objects_.at(static_cast<std::size_t>(x));
  std::vector<net::NodeId> locations;
  for (net::NodeId v = 0; v < rooted_->tree().nodeCount(); ++v) {
    if (state.hasCopy[static_cast<std::size_t>(v)]) locations.push_back(v);
  }
  return locations;
}

}  // namespace hbn::dynamic
