#include "hbn/dynamic/online_policy.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "hbn/core/nibble.h"
#include "hbn/dynamic/adaptive_policy.h"
#include "hbn/net/steiner.h"

namespace hbn::dynamic {
namespace {

/// Legacy per-edge walk charging the u→v path: the non-accumulator
/// route of the frozen-placement policies, bit-identical to
/// FlatLoadAccumulator::chargePath + flush by integer associativity.
void chargePathWalk(const core::FlatTreeView& flat, net::NodeId u,
                    net::NodeId v, core::LoadMap& loads) {
  const core::FlatTreeView::NodeStep* su = &flat.step(u);
  const core::FlatTreeView::NodeStep* sv = &flat.step(v);
  while (su->depth > sv->depth) {
    loads.addEdgeLoad(su->parentEdge, 1);
    u = su->parent;
    su = &flat.step(u);
  }
  while (sv->depth > su->depth) {
    loads.addEdgeLoad(sv->parentEdge, 1);
    v = sv->parent;
    sv = &flat.step(v);
  }
  while (u != v) {
    loads.addEdgeLoad(su->parentEdge, 1);
    u = su->parent;
    su = &flat.step(u);
    loads.addEdgeLoad(sv->parentEdge, 1);
    v = sv->parent;
    sv = &flat.step(v);
  }
}

/// One frozen copy configuration: locations plus everything serving
/// needs precomputed — the per-node entry gate (nearest copy, found by
/// a deterministic multi-source BFS seeded in ascending copy order) and
/// the Steiner edge set write broadcasts charge. Copy sets here need
/// NOT be connected subtrees (extended-nibble maps copies to leaves),
/// which is why gates are a table instead of the counter strategy's
/// first-copy-on-the-anchor-path walk.
struct FrozenConfig {
  std::vector<net::NodeId> locations;  ///< sorted ascending
  std::vector<net::NodeId> gate;       ///< per node: entry copy
  std::vector<net::EdgeId> steinerEdges;

  void build(const net::RootedTree& rooted,
             std::span<const net::NodeId> copyLocations) {
    const net::Tree& tree = rooted.tree();
    locations.assign(copyLocations.begin(), copyLocations.end());
    std::sort(locations.begin(), locations.end());
    locations.erase(std::unique(locations.begin(), locations.end()),
                    locations.end());
    if (locations.empty()) {
      throw std::invalid_argument("FrozenConfig: empty copy set");
    }
    if (locations.front() < 0 || locations.back() >= tree.nodeCount()) {
      throw std::out_of_range("FrozenConfig: copy location");
    }
    gate.assign(static_cast<std::size_t>(tree.nodeCount()),
                net::kInvalidNode);
    std::deque<net::NodeId> queue;
    for (const net::NodeId c : locations) {
      gate[static_cast<std::size_t>(c)] = c;
      queue.push_back(c);
    }
    while (!queue.empty()) {
      const net::NodeId v = queue.front();
      queue.pop_front();
      for (const net::HalfEdge& half : tree.neighbors(v)) {
        if (gate[static_cast<std::size_t>(half.to)] == net::kInvalidNode) {
          gate[static_cast<std::size_t>(half.to)] =
              gate[static_cast<std::size_t>(v)];
          queue.push_back(half.to);
        }
      }
    }
    steinerEdges = net::steinerEdges(rooted, locations);
  }
};

/// Shared serving loop of the frozen-placement policies: a read charges
/// the origin→gate path, a write charges the path plus the copy set's
/// Steiner tree (the paper's static load model, §1.1). No counters
/// move, so per-object state is immutable between handoffs and shard
/// serving is trivially bit-identical for any worker count.
ShardStats serveFrozenShard(const FrozenConfig& config,
                            const core::FlatTreeView& flat, ObjectId x,
                            std::span<const Request> requests,
                            core::LoadMap& loads,
                            core::FlatLoadAccumulator* acc) {
  if (acc && requests.size() < core::kFlatLoadCutover) acc = nullptr;
  for (const Request& request : requests) {
    if (request.object != x) {
      throw std::invalid_argument("serveShard: request targets wrong object");
    }
    const net::NodeId origin = request.origin;
    const net::NodeId entry = config.gate[static_cast<std::size_t>(origin)];
    if (origin != entry) {
      if (acc) {
        acc->chargePath(origin, entry, 1);
      } else {
        chargePathWalk(flat, origin, entry, loads);
      }
    }
    if (request.isWrite) {
      for (const net::EdgeId e : config.steinerEdges) {
        loads.addEdgeLoad(e, 1);
      }
    }
  }
  if (acc) acc->flush(loads);
  return {};
}

ObjectId checkObjectId(ObjectId x, std::size_t numObjects,
                       const char* where) {
  if (x < 0 || static_cast<std::size_t>(x) >= numObjects) {
    throw std::out_of_range(std::string(where) + ": object id");
  }
  return x;
}

/// Reads and checks the `<name> v1` header every policy-state block
/// starts with, so restoring into the wrong policy type fails loudly
/// instead of misparsing.
void expectStateHeader(std::istream& in, std::string_view name) {
  std::string tag;
  std::string version;
  if (!(in >> tag >> version) || tag != name || version != "v1") {
    throw std::invalid_argument("policy state: expected '" +
                                std::string(name) + " v1' header");
  }
}

// ---------------------------------------------------------------------------
// Handoff passes — the per-object views of a §4 re-placement.
// ---------------------------------------------------------------------------

/// Default pass: the whole handoff placement materialised up front.
/// target() is then a lookup, so application order cannot matter.
class EagerHandoffPass final : public HandoffPass {
 public:
  explicit EagerHandoffPass(core::Placement placement)
      : placement_(std::move(placement)) {}

  [[nodiscard]] std::vector<net::NodeId> target(ObjectId x,
                                                int /*worker*/) override {
    checkObjectId(x, placement_.objects.size(), "HandoffPass::target");
    return placement_.objects[static_cast<std::size_t>(x)].locations();
  }

 private:
  core::Placement placement_;
};

/// tree-counters pass: one O(|V|) nibbleObjectInto per queried object —
/// exactly the per-object kernel the registered "nibble" strategy runs
/// under its parallel executor, so lazy targets are bit-identical to
/// the monolithic handoffPlacement row for the same snapshot, at
/// per-touch (not per-handoff) cost.
class NibbleHandoffPass final : public HandoffPass {
 public:
  NibbleHandoffPass(const net::Tree& tree,
                    std::shared_ptr<const workload::Workload> aggregated,
                    int workers)
      : tree_(&tree),
        aggregated_(std::move(aggregated)),
        slots_(static_cast<std::size_t>(std::max(workers, 1))) {}

  [[nodiscard]] std::vector<net::NodeId> target(ObjectId x,
                                                int worker) override {
    if (worker < 0 || static_cast<std::size_t>(worker) >= slots_.size()) {
      throw std::out_of_range("HandoffPass::target: worker slot");
    }
    WorkerSlot& slot = slots_[static_cast<std::size_t>(worker)];
    core::nibbleObjectInto(*tree_, *aggregated_, x, slot.scratch,
                           slot.result);
    return slot.result.placement.locations();
  }

 private:
  struct WorkerSlot {
    core::NibbleScratch scratch;
    core::NibbleObjectResult result;
  };

  const net::Tree* tree_;
  std::shared_ptr<const workload::Workload> aggregated_;
  std::vector<WorkerSlot> slots_;
};

/// static-policy pass: the nested strategy is monolithic (it may
/// optimise across objects), so the full placement is memoised on the
/// first target() call — concurrent first-touchers rendezvous on the
/// std::once_flag and later queries are lookups. The lump moves off the
/// drift epoch onto the first post-handoff touch.
class MemoisedHandoffPass final : public HandoffPass {
 public:
  using Compute = std::function<core::Placement()>;

  explicit MemoisedHandoffPass(Compute compute)
      : compute_(std::move(compute)) {}

  [[nodiscard]] std::vector<net::NodeId> target(ObjectId x,
                                                int /*worker*/) override {
    std::call_once(once_, [this] { placement_ = compute_(); });
    checkObjectId(x, placement_.objects.size(), "HandoffPass::target");
    return placement_.objects[static_cast<std::size_t>(x)].locations();
  }

 private:
  Compute compute_;
  std::once_flag once_;
  core::Placement placement_;
};

// ---------------------------------------------------------------------------
// tree-counters — the FOCS'97 counter scheme, wrapping OnlineTreeStrategy.
// ---------------------------------------------------------------------------

class TreeCountersPolicy final : public OnlinePolicy {
 public:
  TreeCountersPolicy(const net::RootedTree& rooted, int numObjects,
                     net::NodeId initialLocation,
                     const OnlineOptions& options)
      : strategy_(rooted, numObjects, initialLocation, options),
        options_(options),
        nibble_(engine::StrategyRegistry::global().create("nibble")) {}

  [[nodiscard]] std::string_view name() const override {
    return "tree-counters";
  }

  [[nodiscard]] std::string spec() const override {
    // Minimal rendering: only non-default options, so the canonical
    // spec of a default-configured instance is comma-free and can be
    // embedded as an adaptive member.
    const OnlineOptions defaults;
    std::string out = "tree-counters";
    char sep = ':';
    if (options_.replicationThreshold != defaults.replicationThreshold) {
      out += sep;
      sep = ',';
      out += "threshold=";
      out += std::to_string(options_.replicationThreshold);
    }
    if (options_.contractOnWrite != defaults.contractOnWrite) {
      out += sep;
      sep = ',';
      out += "contract=";
      out += options_.contractOnWrite ? '1' : '0';
    }
    return out;
  }

  ShardStats serveShard(ObjectId x, std::span<const Request> requests,
                        core::LoadMap& loads, ServeScratch& scratch,
                        core::FlatLoadAccumulator* acc) override {
    return strategy_.serveShard(x, requests, loads, scratch, acc);
  }

  [[nodiscard]] std::vector<net::NodeId> copySet(ObjectId x) const override {
    return strategy_.copySet(x);
  }

  [[nodiscard]] const core::FlatTreeView& flatView() const noexcept override {
    return strategy_.flatView();
  }

  [[nodiscard]] core::Placement handoffPlacement(
      const workload::Workload& aggregated, int threads) override {
    // The §4 handoff target of the counter scheme is the nibble
    // placement of the aggregated frequencies (connected copy sets by
    // Theorem 3.1, so the counter machinery resumes seamlessly).
    engine::Context ctx;
    ctx.threads = threads;
    ++handoffs_;
    return nibble_->place(strategy_.flatView().rooted().tree(), aggregated,
                          ctx);
  }

  [[nodiscard]] std::unique_ptr<HandoffPass> beginHandoff(
      std::shared_ptr<const workload::Workload> aggregated,
      int workers) override {
    ++handoffs_;
    return std::make_unique<NibbleHandoffPass>(
        strategy_.flatView().rooted().tree(), std::move(aggregated),
        workers);
  }

  void resetCopySet(ObjectId x,
                    std::span<const net::NodeId> locations) override {
    strategy_.resetCopySet(x, locations);
  }

  [[nodiscard]] std::map<std::string, double> metrics() const override {
    return {{"policy.threshold",
             static_cast<double>(options_.replicationThreshold)},
            {"policy.contractOnWrite", options_.contractOnWrite ? 1.0 : 0.0},
            {"policy.handoffs", static_cast<double>(handoffs_)}};
  }

  void serializeState(std::ostream& os) const override {
    os << "tree-counters v1 " << handoffs_ << '\n';
    strategy_.serializeState(os);
  }

  void restoreState(std::istream& in) override {
    expectStateHeader(in, "tree-counters");
    if (!(in >> handoffs_)) {
      throw std::invalid_argument("tree-counters state: bad handoff count");
    }
    strategy_.restoreState(in);
  }

 private:
  OnlineTreeStrategy strategy_;
  OnlineOptions options_;
  std::unique_ptr<engine::PlacementStrategy> nibble_;
  std::uint64_t handoffs_ = 0;
};

// ---------------------------------------------------------------------------
// static — serve from a frozen placement, recomputed only at handoffs
// by a nested PlacementStrategy spec (composing the two registries).
// ---------------------------------------------------------------------------

class StaticPolicy final : public OnlinePolicy {
 public:
  StaticPolicy(const net::RootedTree& rooted, int numObjects,
               net::NodeId initialLocation,
               std::shared_ptr<const engine::PlacementStrategy> placement,
               std::string placementSpec)
      : rooted_(&rooted),
        flat_(rooted),
        placement_(std::move(placement)),
        placementSpec_(std::move(placementSpec)) {
    if (numObjects < 1) {
      throw std::invalid_argument("StaticPolicy: numObjects >= 1");
    }
    // Every object starts on the same single-copy configuration; share
    // one gate table instead of materialising numObjects copies of it
    // (a million-object trace would otherwise pay O(|X|·n) memory up
    // front). resetCopySet gives an object its own config on first
    // divergence — distinct slots, so the handoff pass stays safe to
    // run concurrently for distinct objects.
    auto initial = std::make_shared<FrozenConfig>();
    initial->build(rooted, std::span(&initialLocation, 1));
    objects_.assign(static_cast<std::size_t>(numObjects),
                    std::move(initial));
  }

  [[nodiscard]] std::string_view name() const override { return "static"; }

  [[nodiscard]] std::string spec() const override {
    if (placementSpec_ == "extended-nibble") return "static";
    return "static:placement=" + placementSpec_;
  }

  ShardStats serveShard(ObjectId x, std::span<const Request> requests,
                        core::LoadMap& loads, ServeScratch& /*scratch*/,
                        core::FlatLoadAccumulator* acc) override {
    checkObjectId(x, objects_.size(), "serveShard");
    return serveFrozenShard(*objects_[static_cast<std::size_t>(x)], flat_,
                            x, requests, loads, acc);
  }

  [[nodiscard]] std::vector<net::NodeId> copySet(ObjectId x) const override {
    checkObjectId(x, objects_.size(), "copySet");
    return objects_[static_cast<std::size_t>(x)]->locations;
  }

  [[nodiscard]] const core::FlatTreeView& flatView() const noexcept override {
    return flat_;
  }

  [[nodiscard]] core::Placement handoffPlacement(
      const workload::Workload& aggregated, int threads) override {
    engine::Context ctx;
    ctx.threads = threads;
    ++handoffs_;
    return placement_->place(rooted_->tree(), aggregated, ctx);
  }

  [[nodiscard]] std::unique_ptr<HandoffPass> beginHandoff(
      std::shared_ptr<const workload::Workload> aggregated,
      int workers) override {
    ++handoffs_;
    // The memoised pass reads the WHOLE matrix at first-target time,
    // possibly epochs after the trigger — so it cannot lean on the
    // row-stability guarantee row-local passes get for free and must
    // freeze the frequencies now.
    auto frozen = std::make_shared<const workload::Workload>(*aggregated);
    return std::make_unique<MemoisedHandoffPass>(
        [this, frozen = std::move(frozen), workers] {
          engine::Context ctx;
          ctx.threads = workers;
          return placement_->place(rooted_->tree(), *frozen, ctx);
        });
  }

  void resetCopySet(ObjectId x,
                    std::span<const net::NodeId> locations) override {
    checkObjectId(x, objects_.size(), "resetCopySet");
    auto config = std::make_shared<FrozenConfig>();
    config->build(*rooted_, locations);
    objects_[static_cast<std::size_t>(x)] = std::move(config);
  }

  [[nodiscard]] std::map<std::string, double> metrics() const override {
    std::size_t copyNodes = 0;
    for (const auto& config : objects_) {
      copyNodes += config->locations.size();
    }
    return {{"policy.handoffs", static_cast<double>(handoffs_)},
            {"policy.copyNodes", static_cast<double>(copyNodes)}};
  }

  void serializeState(std::ostream& os) const override {
    // FrozenConfig's gate table and Steiner edges are derived data; the
    // sorted location list alone reconstructs the config bit for bit.
    os << "static v1 " << handoffs_ << '\n';
    os << "objects " << objects_.size() << '\n';
    for (std::size_t x = 0; x < objects_.size(); ++x) {
      const FrozenConfig& config = *objects_[x];
      os << x << ' ' << config.locations.size();
      for (const net::NodeId v : config.locations) os << ' ' << v;
      os << '\n';
    }
  }

  void restoreState(std::istream& in) override {
    expectStateHeader(in, "static");
    const auto fail = [](const std::string& why) {
      throw std::invalid_argument("static state: " + why);
    };
    if (!(in >> handoffs_)) fail("bad handoff count");
    std::string tag;
    std::size_t count = 0;
    if (!(in >> tag >> count) || tag != "objects" ||
        count != objects_.size()) {
      fail("bad objects header");
    }
    // Most objects typically share a configuration (everything starts
    // on one, and a monolithic handoff moves many objects to identical
    // sets); dedupe on the sorted location key so restore rebuilds each
    // distinct FrozenConfig (gate BFS + Steiner) once, not per object.
    std::map<std::vector<net::NodeId>, std::shared_ptr<const FrozenConfig>>
        configs;
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t x = 0;
      std::size_t nLoc = 0;
      if (!(in >> x >> nLoc) || x != i) fail("bad object line");
      if (nLoc < 1 ||
          nLoc > static_cast<std::size_t>(rooted_->tree().nodeCount())) {
        fail("copy count out of range");
      }
      std::vector<net::NodeId> locations(nLoc);
      for (net::NodeId& v : locations) {
        if (!(in >> v) || v < 0 || v >= rooted_->tree().nodeCount()) {
          fail("location out of range");
        }
      }
      auto [it, inserted] = configs.try_emplace(locations, nullptr);
      if (inserted) {
        auto config = std::make_shared<FrozenConfig>();
        config->build(*rooted_, locations);
        if (config->locations != it->first) {
          fail("locations not sorted/unique");
        }
        it->second = std::move(config);
      }
      objects_[x] = it->second;
    }
  }

 private:
  const net::RootedTree* rooted_;
  core::FlatTreeView flat_;
  std::shared_ptr<const engine::PlacementStrategy> placement_;
  std::string placementSpec_;
  std::vector<std::shared_ptr<const FrozenConfig>> objects_;
  std::uint64_t handoffs_ = 0;
};

// ---------------------------------------------------------------------------
// full-replication / owner-only — fixed configurations shared by every
// object (one FrozenConfig, not numObjects of them); not migratable.
// ---------------------------------------------------------------------------

class FixedConfigPolicy : public OnlinePolicy {
 public:
  FixedConfigPolicy(const net::RootedTree& rooted, int numObjects,
                    std::span<const net::NodeId> locations)
      : flat_(rooted), numObjects_(numObjects) {
    if (numObjects < 1) {
      throw std::invalid_argument("OnlinePolicy: numObjects >= 1");
    }
    config_.build(rooted, locations);
  }

  ShardStats serveShard(ObjectId x, std::span<const Request> requests,
                        core::LoadMap& loads, ServeScratch& /*scratch*/,
                        core::FlatLoadAccumulator* acc) override {
    checkObjectId(x, static_cast<std::size_t>(numObjects_), "serveShard");
    return serveFrozenShard(config_, flat_, x, requests, loads, acc);
  }

  [[nodiscard]] std::vector<net::NodeId> copySet(ObjectId x) const override {
    checkObjectId(x, static_cast<std::size_t>(numObjects_), "copySet");
    return config_.locations;
  }

  [[nodiscard]] const core::FlatTreeView& flatView() const noexcept override {
    return flat_;
  }

  [[nodiscard]] bool migratable() const noexcept override { return false; }

  [[nodiscard]] core::Placement handoffPlacement(const workload::Workload&,
                                                 int) override {
    throw std::logic_error(std::string(name()) + " does not migrate");
  }

  void resetCopySet(ObjectId, std::span<const net::NodeId>) override {
    throw std::logic_error(std::string(name()) + " does not migrate");
  }

  [[nodiscard]] std::map<std::string, double> metrics() const override {
    return {{"policy.copyNodes",
             static_cast<double>(config_.locations.size())}};
  }

  void serializeState(std::ostream& os) const override {
    // The configuration is immutable and fully determined by the spec;
    // the block is a validation marker only.
    os << "fixed v1 " << name() << '\n';
  }

  void restoreState(std::istream& in) override {
    expectStateHeader(in, "fixed");
    std::string stored;
    if (!(in >> stored) || stored != name()) {
      throw std::invalid_argument(
          "fixed-config state: policy name mismatch (got '" + stored +
          "', expected '" + std::string(name()) + "')");
    }
  }

 protected:
  core::FlatTreeView flat_;
  int numObjects_;
  FrozenConfig config_;
};

class FullReplicationPolicy final : public FixedConfigPolicy {
 public:
  FullReplicationPolicy(const net::RootedTree& rooted, int numObjects)
      : FixedConfigPolicy(rooted, numObjects,
                          rooted.tree().processors()) {}

  [[nodiscard]] std::string_view name() const override {
    return "full-replication";
  }
};

class OwnerOnlyPolicy final : public FixedConfigPolicy {
 public:
  OwnerOnlyPolicy(const net::RootedTree& rooted, int numObjects,
                  net::NodeId owner)
      : FixedConfigPolicy(rooted, numObjects, std::span(&owner, 1)),
        owner_(owner) {}

  [[nodiscard]] std::string_view name() const override {
    return "owner-only";
  }

  [[nodiscard]] std::map<std::string, double> metrics() const override {
    return {{"policy.copyNodes", 1.0},
            {"policy.owner", static_cast<double>(owner_)}};
  }

 private:
  net::NodeId owner_;
};

// ---------------------------------------------------------------------------
// Factory plumbing.
// ---------------------------------------------------------------------------

class LambdaPolicyFactory final : public OnlinePolicyFactory {
 public:
  using Fn = std::function<std::unique_ptr<OnlinePolicy>(
      const net::RootedTree&, int, net::NodeId)>;

  explicit LambdaPolicyFactory(Fn fn) : fn_(std::move(fn)) {}

  [[nodiscard]] std::unique_ptr<OnlinePolicy> build(
      const net::RootedTree& rooted, int numObjects,
      net::NodeId initialLocation) const override {
    return fn_(rooted, numObjects, initialLocation);
  }

 private:
  Fn fn_;
};

std::unique_ptr<OnlinePolicyFactory> makeFactory(LambdaPolicyFactory::Fn fn) {
  return std::make_unique<LambdaPolicyFactory>(std::move(fn));
}

}  // namespace

std::unique_ptr<HandoffPass> OnlinePolicy::beginHandoff(
    std::shared_ptr<const workload::Workload> aggregated, int workers) {
  return std::make_unique<EagerHandoffPass>(
      handoffPlacement(*aggregated, workers));
}

void applyHandoffTarget(OnlinePolicy& policy, ObjectId x,
                        std::span<const net::NodeId> target,
                        core::FlatLoadAccumulator& acc,
                        core::LoadMap& migration) {
  std::vector<net::NodeId> terminals = policy.copySet(x);
  // A target that leaves x where it is moves no data — skip the Steiner
  // charge (both sets are ascending, so equality is positional) but
  // still resetCopySet for the policy's bookkeeping.
  if (terminals.size() == target.size() &&
      std::equal(terminals.begin(), terminals.end(), target.begin())) {
    policy.resetCopySet(x, target);
    return;
  }
  terminals.insert(terminals.end(), target.begin(), target.end());
  acc.chargeSteiner(terminals, 1, migration);
  policy.resetCopySet(x, target);
}

std::string treeCountersSpec(const OnlineOptions& options) {
  std::ostringstream oss;
  oss << "tree-counters:threshold=" << options.replicationThreshold
      << ",contract=" << (options.contractOnWrite ? 1 : 0);
  return oss.str();
}

OnlinePolicyRegistry& OnlinePolicyRegistry::global() {
  static OnlinePolicyRegistry* registry = [] {
    auto* r = new OnlinePolicyRegistry();
    detail::registerBuiltinPolicies(*r);
    return r;
  }();
  return *registry;
}

std::string OnlinePolicyRegistry::helpText() const {
  return engine::formatSpecHelp(list());
}

namespace detail {

void registerBuiltinPolicies(OnlinePolicyRegistry& registry) {
  registry.add(
      {"tree-counters",
       "FOCS'97 counter scheme: copy subtrees grow towards readers and "
       "contract on writes, steered by per-edge read counters",
       "threshold=D,contract=0|1"},
      [](engine::StrategyOptions& options) {
        OnlineOptions opts;
        opts.replicationThreshold =
            options.getInt("threshold", opts.replicationThreshold);
        opts.contractOnWrite =
            options.getBool("contract", opts.contractOnWrite);
        return makeFactory([opts](const net::RootedTree& rooted,
                                  int numObjects,
                                  net::NodeId initialLocation) {
          return std::make_unique<TreeCountersPolicy>(
              rooted, numObjects, initialLocation, opts);
        });
      },
      {"counters"});

  registry.add(
      {"static",
       "serve from a frozen placement recomputed only at drift handoffs "
       "by the nested strategy spec (default extended-nibble)",
       "placement=SPEC"},
      [](engine::StrategyOptions& options) {
        std::string spec = options.getString("placement", "extended-nibble");
        // Resolve the nested spec NOW so a typo fails at --policy parse
        // time, not at the first drift handoff mid-serve. The strategy
        // is stateless and const, so the servers a factory builds can
        // share one instance.
        std::shared_ptr<const engine::PlacementStrategy> placement =
            engine::StrategyRegistry::global().create(spec);
        return makeFactory([placement = std::move(placement),
                            spec = std::move(spec)](
                               const net::RootedTree& rooted, int numObjects,
                               net::NodeId initialLocation) {
          return std::make_unique<StaticPolicy>(
              rooted, numObjects, initialLocation, placement, spec);
        });
      },
      {"frozen"});

  registry.add(
      {"full-replication",
       "a copy on every processor: reads are local, every write "
       "broadcasts over the whole processor Steiner tree",
       ""},
      [](engine::StrategyOptions&) {
        return makeFactory([](const net::RootedTree& rooted, int numObjects,
                              net::NodeId /*initialLocation*/) {
          return std::make_unique<FullReplicationPolicy>(rooted, numObjects);
        });
      });

  registry.add(
      {"owner-only",
       "a single fixed copy per object, no replication: every request "
       "pays the path to the owner",
       ""},
      [](engine::StrategyOptions&) {
        return makeFactory([](const net::RootedTree& rooted, int numObjects,
                              net::NodeId initialLocation) {
          return std::make_unique<OwnerOnlyPolicy>(rooted, numObjects,
                                                   initialLocation);
        });
      });

  registerAdaptivePolicy(registry);
}

}  // namespace detail
}  // namespace hbn::dynamic
