#include "hbn/baseline/exact.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"

namespace hbn::baseline {
namespace {

using core::LoadMap;
using core::ObjectPlacement;
using workload::Count;
using workload::ObjectId;

// One candidate copy set for an object, with its precomputed edge loads.
struct Option {
  std::vector<net::NodeId> locations;
  std::vector<Count> edgeLoad;
};

// Enumerates all non-empty subsets of `procs` with size <= maxCopies.
void enumerateSubsets(std::span<const net::NodeId> procs, int maxCopies,
                      std::vector<std::vector<net::NodeId>>& out) {
  std::vector<net::NodeId> current;
  auto recurse = [&](auto&& self, std::size_t start) -> void {
    if (!current.empty()) out.push_back(current);
    if (static_cast<int>(current.size()) == maxCopies) return;
    for (std::size_t i = start; i < procs.size(); ++i) {
      current.push_back(procs[i]);
      self(self, i + 1);
      current.pop_back();
    }
  };
  recurse(recurse, 0);
}

}  // namespace

ExactResult solveExact(const net::Tree& tree, const workload::Workload& load,
                       const ExactOptions& options) {
  if (options.maxCopiesPerObject < 1) {
    throw std::invalid_argument("solveExact: maxCopiesPerObject >= 1");
  }
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto numEdges = static_cast<std::size_t>(tree.edgeCount());
  const auto numObjects = static_cast<std::size_t>(load.numObjects());

  // Candidate copy sets (shared across objects — the options differ only
  // in their load vectors).
  std::vector<std::vector<net::NodeId>> subsets;
  enumerateSubsets(tree.processors(), options.maxCopiesPerObject, subsets);
  if (subsets.size() > 4096) {
    throw std::invalid_argument(
        "solveExact: candidate space too large; shrink the tree or "
        "maxCopiesPerObject");
  }

  // Per-object options with cached load vectors.
  std::vector<std::vector<Option>> optionsPerObject(numObjects);
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    auto& opts = optionsPerObject[static_cast<std::size_t>(x)];
    opts.reserve(subsets.size());
    for (const auto& subset : subsets) {
      Option opt;
      opt.locations = subset;
      const ObjectPlacement placed =
          core::makeNearestPlacement(tree, load, x, subset);
      LoadMap lm(tree.edgeCount());
      core::accumulateObjectLoad(rooted, placed, lm);
      opt.edgeLoad.assign(lm.edgeLoads().begin(), lm.edgeLoads().end());
      opts.push_back(std::move(opt));
    }
    // Options with smaller worst-edge load first: finds good incumbents
    // early and tightens pruning.
    std::stable_sort(opts.begin(), opts.end(),
                     [](const Option& a, const Option& b) {
                       const Count ma =
                           *std::max_element(a.edgeLoad.begin(),
                                             a.edgeLoad.end());
                       const Count mb =
                           *std::max_element(b.edgeLoad.begin(),
                                             b.edgeLoad.end());
                       return ma < mb;
                     });
  }

  // Suffix per-edge lower bounds: suffix[k][e] = Σ_{x >= k} min-load(e,x).
  // An edge can never carry less, whatever the remaining choices.
  std::vector<std::vector<Count>> suffix(numObjects + 1,
                                         std::vector<Count>(numEdges, 0));
  {
    const net::RootedTree lbRooted(tree, tree.defaultRoot());
    for (ObjectId x = load.numObjects() - 1; x >= 0; --x) {
      workload::Workload single(1, load.numNodes());
      for (net::NodeId v = 0; v < load.numNodes(); ++v) {
        if (load.reads(x, v) > 0) single.addReads(0, v, load.reads(x, v));
        if (load.writes(x, v) > 0) single.addWrites(0, v, load.writes(x, v));
      }
      const core::LowerBound lb = core::analyticLowerBound(lbRooted, single);
      for (std::size_t e = 0; e < numEdges; ++e) {
        suffix[static_cast<std::size_t>(x)][e] =
            suffix[static_cast<std::size_t>(x) + 1][e] +
            lb.edgeMinima.edgeLoad(static_cast<net::EdgeId>(e));
      }
    }
  }

  // Relative congestion of (edge loads + optional bus view).
  auto congestionOf = [&](std::span<const Count> edgeLoad) {
    double best = 0.0;
    for (std::size_t e = 0; e < numEdges; ++e) {
      best = std::max(best,
                      static_cast<double>(edgeLoad[e]) /
                          tree.edgeBandwidth(static_cast<net::EdgeId>(e)));
    }
    for (const net::NodeId b : tree.buses()) {
      Count sum = 0;
      for (const net::HalfEdge& he : tree.neighbors(b)) {
        sum += edgeLoad[static_cast<std::size_t>(he.edge)];
      }
      best = std::max(best, static_cast<double>(sum) / 2.0 /
                                tree.busBandwidth(b));
    }
    return best;
  };

  ExactResult result;
  result.congestion = std::numeric_limits<double>::infinity();
  std::vector<int> choice(numObjects, 0);
  std::vector<int> bestChoice(numObjects, 0);
  std::vector<Count> running(numEdges, 0);
  std::vector<Count> bound(numEdges, 0);
  bool budgetExhausted = false;

  auto dfs = [&](auto&& self, std::size_t idx) -> void {
    if (budgetExhausted) return;
    ++result.nodesExplored;
    if (options.nodeBudget > 0 && result.nodesExplored > options.nodeBudget) {
      budgetExhausted = true;
      return;
    }
    // Prune: even with per-edge minima for the remaining objects the
    // congestion cannot drop below this.
    for (std::size_t e = 0; e < numEdges; ++e) {
      bound[e] = running[e] + suffix[idx][e];
    }
    if (congestionOf(bound) >= result.congestion) return;
    if (idx == numObjects) {
      result.congestion = congestionOf(running);
      bestChoice = choice;
      return;
    }
    for (std::size_t o = 0; o < optionsPerObject[idx].size(); ++o) {
      const Option& opt = optionsPerObject[idx][o];
      for (std::size_t e = 0; e < numEdges; ++e) running[e] += opt.edgeLoad[e];
      choice[idx] = static_cast<int>(o);
      self(self, idx + 1);
      for (std::size_t e = 0; e < numEdges; ++e) running[e] -= opt.edgeLoad[e];
    }
  };
  dfs(dfs, 0);

  result.provedOptimal = !budgetExhausted;
  result.placement.objects.resize(numObjects);
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    const Option& opt = optionsPerObject[static_cast<std::size_t>(x)]
                                        [static_cast<std::size_t>(
                                            bestChoice[static_cast<std::size_t>(
                                                x)])];
    result.placement.objects[static_cast<std::size_t>(x)] =
        core::makeNearestPlacement(tree, load, x, opt.locations);
  }
  return result;
}

}  // namespace hbn::baseline
