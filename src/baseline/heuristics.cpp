#include "hbn/baseline/heuristics.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "hbn/core/load.h"

namespace hbn::baseline {
namespace {

using core::Copy;
using core::LoadMap;
using core::ObjectPlacement;
using workload::Count;
using workload::ObjectId;

// Congestion of `edgeLoads` plus derived bus loads (shared by greedy and
// local search, which maintain running loads incrementally).
double congestionOf(const net::Tree& tree, const LoadMap& loads) {
  return loads.congestion(tree);
}

}  // namespace

Placement bestSingleCopy(const net::Tree& tree,
                         const workload::Workload& load) {
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto procs = tree.processors();

  // Heaviest objects first: they dominate congestion and should pick their
  // spots before the light ones fill in.
  std::vector<ObjectId> order(static_cast<std::size_t>(load.numObjects()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    return load.objectTotal(a) > load.objectTotal(b);
  });

  Placement placement;
  placement.objects.resize(static_cast<std::size_t>(load.numObjects()));
  LoadMap running(tree.edgeCount());
  for (const ObjectId x : order) {
    double bestCongestion = 0.0;
    ObjectPlacement bestObject;
    bool first = true;
    for (const net::NodeId p : procs) {
      const net::NodeId locations[] = {p};
      ObjectPlacement candidate =
          core::makeNearestPlacement(tree, load, x, locations);
      LoadMap trial = running;
      core::accumulateObjectLoad(rooted, candidate, trial);
      const double congestion = congestionOf(tree, trial);
      if (first || congestion < bestCongestion) {
        first = false;
        bestCongestion = congestion;
        bestObject = std::move(candidate);
      }
    }
    core::accumulateObjectLoad(rooted, bestObject, running);
    placement.objects[static_cast<std::size_t>(x)] = std::move(bestObject);
  }
  return placement;
}

Placement weightedMedian(const net::Tree& tree,
                         const workload::Workload& load) {
  const net::RootedTree rooted(tree, tree.defaultRoot());
  Placement placement;
  placement.objects.reserve(static_cast<std::size_t>(load.numObjects()));
  const auto order = rooted.preorder();
  std::vector<Count> sub(static_cast<std::size_t>(tree.nodeCount()));

  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    // Total communication load of placing the single copy at node u is
    // Σ_v h(v) · dist(v, u); minimised at a weighted median. Compute the
    // classic two-pass subtree aggregation, then pick the best PROCESSOR
    // (inner nodes may not store).
    const Count total = load.objectTotal(x);
    if (total == 0) {
      const net::NodeId locations[] = {tree.processors().front()};
      placement.objects.push_back(
          core::makeNearestPlacement(tree, load, x, locations));
      continue;
    }
    for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
      sub[static_cast<std::size_t>(v)] = load.total(x, v);
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const net::NodeId p = rooted.parent(*it);
      if (p != net::kInvalidNode) {
        sub[static_cast<std::size_t>(p)] += sub[static_cast<std::size_t>(*it)];
      }
    }
    // cost(root) then cost(child) = cost(parent) + total - 2*sub(child).
    std::vector<Count> cost(static_cast<std::size_t>(tree.nodeCount()), 0);
    Count rootCost = 0;
    for (net::NodeId v = 0; v < tree.nodeCount(); ++v) {
      rootCost += load.total(x, v) * rooted.depth(v);
    }
    cost[static_cast<std::size_t>(rooted.root())] = rootCost;
    for (const net::NodeId v : order) {
      if (v == rooted.root()) continue;
      cost[static_cast<std::size_t>(v)] =
          cost[static_cast<std::size_t>(rooted.parent(v))] + total -
          2 * sub[static_cast<std::size_t>(v)];
    }
    net::NodeId best = tree.processors().front();
    for (const net::NodeId p : tree.processors()) {
      if (cost[static_cast<std::size_t>(p)] <
          cost[static_cast<std::size_t>(best)]) {
        best = p;
      }
    }
    const net::NodeId locations[] = {best};
    placement.objects.push_back(
        core::makeNearestPlacement(tree, load, x, locations));
  }
  return placement;
}

Placement randomSingleCopy(const net::Tree& tree,
                           const workload::Workload& load, util::Rng& rng) {
  const auto procs = tree.processors();
  Placement placement;
  placement.objects.reserve(static_cast<std::size_t>(load.numObjects()));
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    const net::NodeId locations[] = {procs[static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(procs.size())))]};
    placement.objects.push_back(
        core::makeNearestPlacement(tree, load, x, locations));
  }
  return placement;
}

Placement fullReplication(const net::Tree& tree,
                          const workload::Workload& load) {
  std::vector<net::NodeId> everywhere(tree.processors().begin(),
                                      tree.processors().end());
  Placement placement;
  placement.objects.reserve(static_cast<std::size_t>(load.numObjects()));
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    placement.objects.push_back(
        core::makeNearestPlacement(tree, load, x, everywhere));
  }
  return placement;
}

Placement localSearch(const net::Tree& tree, const workload::Workload& load,
                      const Placement& initial, util::Rng& rng,
                      const LocalSearchOptions& options) {
  if (initial.numObjects() != load.numObjects()) {
    throw std::invalid_argument("localSearch: placement/workload mismatch");
  }
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto procs = tree.processors();

  // Current state: per-object location sets (leaf-only) with nearest
  // assignment; rebuilt object loads cached for delta evaluation.
  std::vector<std::vector<net::NodeId>> locations(
      static_cast<std::size_t>(load.numObjects()));
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    locations[static_cast<std::size_t>(x)] =
        initial.objects[static_cast<std::size_t>(x)].locations();
    for (const net::NodeId v : locations[static_cast<std::size_t>(x)]) {
      if (!tree.isProcessor(v)) {
        throw std::invalid_argument("localSearch: initial not leaf-only");
      }
    }
  }

  auto buildPlacement = [&] {
    Placement p;
    p.objects.reserve(locations.size());
    for (ObjectId x = 0; x < load.numObjects(); ++x) {
      p.objects.push_back(core::makeNearestPlacement(
          tree, load, x, locations[static_cast<std::size_t>(x)]));
    }
    return p;
  };

  Placement current = buildPlacement();
  double best = core::evaluateCongestion(rooted, current);

  for (int iter = 0; iter < options.maxIterations; ++iter) {
    bool improved = false;
    for (int prop = 0; prop < options.proposalsPerIteration; ++prop) {
      const auto x = static_cast<std::size_t>(
          rng.nextBelow(static_cast<std::uint64_t>(load.numObjects())));
      auto proposal = locations;
      const net::NodeId leaf = procs[static_cast<std::size_t>(
          rng.nextBelow(static_cast<std::uint64_t>(procs.size())))];
      auto& locs = proposal[x];
      const auto it = std::find(locs.begin(), locs.end(), leaf);
      if (it != locs.end()) {
        if (locs.size() == 1) continue;  // must keep at least one copy
        locs.erase(it);
      } else {
        locs.push_back(leaf);
        std::sort(locs.begin(), locs.end());
      }
      // Evaluate the proposal.
      std::swap(locations, proposal);
      const Placement candidate = buildPlacement();
      const double congestion = core::evaluateCongestion(rooted, candidate);
      if (congestion < best) {
        best = congestion;
        current = candidate;
        improved = true;
      } else {
        std::swap(locations, proposal);  // revert
      }
    }
    if (!improved) break;
  }
  return current;
}

}  // namespace hbn::baseline
