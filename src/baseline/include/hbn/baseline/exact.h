// Exact (branch-and-bound) congestion minimisation for small instances.
//
// The decision problem is NP-complete (Theorem 2.1), so exhaustive search
// is only feasible on small trees; the solver enumerates, per object, all
// copy sets of up to `maxCopiesPerObject` processors with nearest-copy
// request assignment, and prunes with the analytic per-edge lower bound
// (the remaining objects can never push an edge below
// Σ min(h_below, h_above, κ_x)).
//
// Model note: references are fixed to the nearest copy, which is optimal
// for single-copy sets (any other reference only lengthens paths) and in
// particular exact for the all-write instances of the NP-hardness gadget.
// With redundant copy sets a cleverer read routing could in principle
// shave congestion, so for maxCopiesPerObject > 1 the result is exact
// within the canonical nearest-assignment model (and always an upper
// bound on the unrestricted optimum as well as a valid placement).
#pragma once

#include <cstdint>

#include "hbn/core/placement.h"
#include "hbn/net/tree.h"
#include "hbn/workload/workload.h"

namespace hbn::baseline {

/// Search configuration.
struct ExactOptions {
  /// Maximum copies per object (1 = non-redundant; the NP-proof's case).
  int maxCopiesPerObject = 1;
  /// Abort after this many search nodes (0 = unlimited). When hit, the
  /// result carries the best placement found with `provedOptimal=false`.
  std::int64_t nodeBudget = 50'000'000;
};

/// Solver output.
struct ExactResult {
  core::Placement placement;
  double congestion = 0.0;
  bool provedOptimal = false;
  std::int64_t nodesExplored = 0;
};

/// Runs the branch-and-bound search. Throws std::invalid_argument for
/// infeasible search spaces (e.g. more candidate sets than memory allows).
[[nodiscard]] ExactResult solveExact(const net::Tree& tree,
                                     const workload::Workload& load,
                                     const ExactOptions& options = {});

}  // namespace hbn::baseline
