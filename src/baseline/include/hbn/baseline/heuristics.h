// Baseline placement strategies for the comparison experiments (E7/E9).
//
// These are the strawmen the paper's congestion-centric approach is
// motivated against:
//
//   * bestSingleCopy   — congestion-aware greedy: each object gets one
//                        copy on the leaf minimising the running
//                        congestion (objects in decreasing traffic order),
//   * weightedMedian   — classic total-communication-load optimisation:
//                        one copy at the object's weighted tree median
//                        (minimises Σ load but may congest single edges),
//   * randomSingleCopy — one copy on a uniformly random leaf,
//   * fullReplication  — a copy on every processor (reads free, writes
//                        broadcast everywhere),
//   * localSearch      — hill-climbing over copy sets starting from any
//                        placement (used to tighten upper bounds on small
//                        instances).
//
// All outputs are leaf-only placements with nearest-copy assignment.
#pragma once

#include "hbn/core/placement.h"
#include "hbn/net/tree.h"
#include "hbn/util/rng.h"
#include "hbn/workload/workload.h"

namespace hbn::baseline {

using core::Placement;

/// Greedy congestion-aware single-copy placement.
[[nodiscard]] Placement bestSingleCopy(const net::Tree& tree,
                                       const workload::Workload& load);

/// One copy per object at its weighted median (minimises total load).
[[nodiscard]] Placement weightedMedian(const net::Tree& tree,
                                       const workload::Workload& load);

/// One copy per object on a uniformly random processor.
[[nodiscard]] Placement randomSingleCopy(const net::Tree& tree,
                                         const workload::Workload& load,
                                         util::Rng& rng);

/// A copy of every object on every processor.
[[nodiscard]] Placement fullReplication(const net::Tree& tree,
                                        const workload::Workload& load);

/// Options for the local-search improver.
struct LocalSearchOptions {
  int maxIterations = 2000;
  /// Random restarts of the object/leaf proposal per iteration.
  int proposalsPerIteration = 8;
};

/// Hill-climbs `initial` by adding/removing/moving copies (keeping at
/// least one per object); returns the best placement found.
[[nodiscard]] Placement localSearch(const net::Tree& tree,
                                    const workload::Workload& load,
                                    const Placement& initial, util::Rng& rng,
                                    const LocalSearchOptions& options = {});

}  // namespace hbn::baseline
