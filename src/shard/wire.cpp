#include "hbn/shard/wire.h"

#include <limits>

namespace hbn::shard {

const char* frameTypeName(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello-ack";
    case FrameType::kEpoch: return "epoch";
    case FrameType::kStats: return "stats";
    case FrameType::kDecide: return "decide";
    case FrameType::kMigrate: return "migrate";
    case FrameType::kFin: return "fin";
    case FrameType::kFinAck: return "fin-ack";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string HelloMsg::encode() const {
  WireWriter w;
  w.u32(protocolVersion);
  w.i32(shardId);
  w.i32(shardCount);
  w.i32(numObjects);
  w.u64(epochSize);
  w.i32(threads);
  w.u8(partitionKind);
  w.u64(partitionSeed);
  w.str(policySpec);
  w.str(treeText);
  return w.take();
}

HelloMsg HelloMsg::decode(std::string_view payload) {
  WireReader r(payload);
  HelloMsg m;
  m.protocolVersion = r.u32();
  m.shardId = r.i32();
  m.shardCount = r.i32();
  m.numObjects = r.i32();
  m.epochSize = r.u64();
  m.threads = r.i32();
  m.partitionKind = r.u8();
  m.partitionSeed = r.u64();
  m.policySpec = r.str();
  m.treeText = r.str();
  r.finish();
  return m;
}

std::string EpochMsg::encode() const {
  WireWriter w;
  w.u64(epoch);
  w.u64(events.size());
  for (const workload::RequestEvent& ev : events) {
    w.i32(ev.object);
    w.i32(ev.origin);
    w.u8(ev.isWrite ? 1 : 0);
  }
  return w.take();
}

EpochMsg EpochMsg::decode(std::string_view payload) {
  WireReader r(payload);
  EpochMsg m;
  m.epoch = r.u64();
  const std::uint64_t count = r.u64();
  // 9 bytes per event: a count that cannot fit the payload is corrupt.
  if (count > payload.size() / 9) {
    throw std::runtime_error("wire: epoch event count exceeds payload");
  }
  m.events.resize(static_cast<std::size_t>(count));
  for (workload::RequestEvent& ev : m.events) {
    ev.object = r.i32();
    ev.origin = r.i32();
    ev.isWrite = r.u8() != 0;
  }
  r.finish();
  return m;
}

namespace {

void encodeLoads(WireWriter& w, const std::vector<std::int64_t>& loads) {
  w.u64(loads.size());
  for (const std::int64_t v : loads) w.i64(v);
}

std::vector<std::int64_t> decodeLoads(WireReader& r,
                                      std::size_t payloadSize) {
  const std::uint64_t count = r.u64();
  if (count > payloadSize / 8) {
    throw std::runtime_error("wire: load vector length exceeds payload");
  }
  std::vector<std::int64_t> loads(static_cast<std::size_t>(count));
  for (std::int64_t& v : loads) v = r.i64();
  return loads;
}

}  // namespace

std::string StatsMsg::encode() const {
  WireWriter w;
  w.u64(epoch);
  w.f64(lowerBound);
  w.f64(busyMs);
  w.u8(wantsHandoff);
  w.u8(migratable);
  w.i64(replications);
  w.i64(invalidations);
  encodeLoads(w, serveLoads);
  return w.take();
}

StatsMsg StatsMsg::decode(std::string_view payload) {
  WireReader r(payload);
  StatsMsg m;
  m.epoch = r.u64();
  m.lowerBound = r.f64();
  m.busyMs = r.f64();
  m.wantsHandoff = r.u8();
  m.migratable = r.u8();
  m.replications = r.i64();
  m.invalidations = r.i64();
  m.serveLoads = decodeLoads(r, payload.size());
  r.finish();
  return m;
}

std::string DecideMsg::encode() const {
  WireWriter w;
  w.u64(epoch);
  w.u8(replace);
  return w.take();
}

DecideMsg DecideMsg::decode(std::string_view payload) {
  WireReader r(payload);
  DecideMsg m;
  m.epoch = r.u64();
  m.replace = r.u8();
  r.finish();
  return m;
}

std::string MigrateMsg::encode() const {
  WireWriter w;
  w.u64(epoch);
  w.f64(busyMs);
  encodeLoads(w, loads);
  return w.take();
}

MigrateMsg MigrateMsg::decode(std::string_view payload) {
  WireReader r(payload);
  MigrateMsg m;
  m.epoch = r.u64();
  m.busyMs = r.f64();
  m.loads = decodeLoads(r, payload.size());
  r.finish();
  return m;
}

std::string FinAckMsg::encode() const {
  WireWriter w;
  w.u64(requests);
  w.f64(busyMs);
  w.i64(replications);
  w.i64(invalidations);
  w.u64(policyMetrics.size());
  for (const auto& [key, value] : policyMetrics) {
    w.str(key);
    w.f64(value);
  }
  return w.take();
}

FinAckMsg FinAckMsg::decode(std::string_view payload) {
  WireReader r(payload);
  FinAckMsg m;
  m.requests = r.u64();
  m.busyMs = r.f64();
  m.replications = r.i64();
  m.invalidations = r.i64();
  const std::uint64_t count = r.u64();
  if (count > payload.size() / 16) {
    throw std::runtime_error("wire: metric count exceeds payload");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key = r.str();
    const double value = r.f64();
    m.policyMetrics.emplace(std::move(key), value);
  }
  r.finish();
  return m;
}

std::string ErrorMsg::encode() const {
  WireWriter w;
  w.u32(stage);
  w.u64(epoch);
  w.str(cause);
  return w.take();
}

ErrorMsg ErrorMsg::decode(std::string_view payload) {
  WireReader r(payload);
  ErrorMsg m;
  m.stage = r.u32();
  m.epoch = r.u64();
  m.cause = r.str();
  r.finish();
  return m;
}

}  // namespace hbn::shard
