#include "hbn/shard/coordinator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "hbn/dynamic/harness.h"
#include "hbn/net/serialize.h"
#include "hbn/serve/error.h"
#include "hbn/serve/pipeline.h"
#include "hbn/util/stats.h"
#include "hbn/util/timer.h"

namespace hbn::shard {
namespace {

std::string encodeEpochPayload(std::uint64_t epoch,
                               std::span<const workload::RequestEvent> events) {
  WireWriter w;
  w.u64(epoch);
  w.u64(events.size());
  for (const workload::RequestEvent& ev : events) {
    w.i32(ev.object);
    w.i32(ev.origin);
    w.u8(ev.isWrite ? 1 : 0);
  }
  return w.take();
}

}  // namespace

ShardCoordinator::ShardCoordinator(const net::Tree& tree, int numObjects,
                                   ShardOptions options,
                                   std::vector<FramedTransport*> links,
                                   std::string transportName)
    : tree_(&tree),
      numObjects_(numObjects),
      options_(std::move(options)),
      links_(std::move(links)),
      transportName_(std::move(transportName)),
      loads_(tree.edgeCount()),
      serveLoads_(tree.edgeCount()) {
  if (links_.empty()) {
    throw std::invalid_argument("ShardCoordinator: at least one worker link");
  }
  if (options_.serve.epochSize < 1) {
    throw std::invalid_argument("ShardCoordinator: epochSize >= 1");
  }
  if (!options_.serve.checkpointDir.empty()) {
    throw std::invalid_argument(
        "ShardCoordinator: checkpointing is single-process only "
        "(drop --checkpoint-dir for sharded serving)");
  }
  if (options_.serve.faults != nullptr) {
    throw std::invalid_argument(
        "ShardCoordinator: fault injection is single-process only");
  }
  drift_.replaceDrift = options_.serve.replaceDrift;
}

void ShardCoordinator::closeAll() noexcept {
  for (FramedTransport* link : links_) link->close();
}

Frame ShardCoordinator::expect(int shard, FrameType want,
                               std::uint64_t epoch) {
  Frame frame = [&] {
    try {
      return links_[static_cast<std::size_t>(shard)]->recv(
          options_.peerTimeoutMs);
    } catch (const serve::Error& e) {
      // Re-attribute with the shard id so "which worker" survives.
      throw serve::Error(e.stage(), e.epoch(),
                         "shard " + std::to_string(shard) + ": " + e.cause());
    }
  }();
  if (frame.type == FrameType::kError) {
    ErrorMsg err = ErrorMsg::decode(frame.payload);
    throw serve::Error(static_cast<serve::Stage>(err.stage), err.epoch,
                       "shard " + std::to_string(shard) + ": " + err.cause);
  }
  if (frame.type != want) {
    throw serve::Error(serve::Stage::Frame, epoch,
                       "shard " + std::to_string(shard) + ": expected " +
                           frameTypeName(want) + ", got " +
                           frameTypeName(frame.type));
  }
  return frame;
}

void ShardCoordinator::handshake() {
  const int shards = static_cast<int>(links_.size());
  const std::string treeText = net::toText(*tree_);
  for (int s = 0; s < shards; ++s) {
    HelloMsg hello;
    hello.shardId = s;
    hello.shardCount = shards;
    hello.numObjects = numObjects_;
    hello.epochSize = options_.serve.epochSize;
    hello.threads = options_.serve.threads;
    hello.partitionKind = static_cast<std::uint8_t>(options_.partition);
    hello.partitionSeed = options_.partitionSeed;
    hello.policySpec = options_.serve.policy;
    hello.treeText = treeText;
    links_[static_cast<std::size_t>(s)]->send(FrameType::kHello,
                                             hello.encode());
  }
  for (int s = 0; s < shards; ++s) {
    try {
      (void)expect(s, FrameType::kHelloAck, 0);
    } catch (const serve::Error& e) {
      // Handshake-phase peer/frame failures are connect failures: the
      // cluster never came up.
      if (e.stage() == serve::Stage::Peer ||
          e.stage() == serve::Stage::Frame) {
        throw serve::Error(serve::Stage::Connect, 0, e.cause());
      }
      throw;
    }
  }
}

ShardedReport ShardCoordinator::serve(serve::RequestStream& stream) {
  if (served_) {
    throw std::logic_error("ShardCoordinator: serve() is one-shot");
  }
  served_ = true;
  try {
    const net::Tree& tree = *tree_;
    const int shards = static_cast<int>(links_.size());
    const int edgeCount = tree.edgeCount();

    handshake();

    ShardedReport report;
    report.policy = options_.serve.policy;
    report.transport = transportName_;
    report.partition = partitionKindName(options_.partition);
    report.workers = shards;

    // Stage 1 runs here exactly as in the single-process engine: the
    // threaded ingest buckets epoch N+1 while the workers serve epoch
    // N (release() right after the broadcast hands the slot back).
    serve::EpochIngest ingest(stream, tree, numObjects_,
                              options_.serve.epochSize,
                              options_.serve.pipeline, nullptr, 0);
    util::Accumulator epochMs;
    util::Timer total;
    double lastLowerBound = 0.0;

    for (;;) {
      const serve::AcquireResult acquired =
          ingest.acquireFor(options_.serve.stallTimeoutMs);
      serve::EpochBatch* const batch = acquired.batch;
      if (batch == nullptr) break;
      util::Timer epochTimer;
      const std::uint64_t epochIndex = report.epochs;
      const std::size_t n = batch->n;

      // Broadcast: encode once, write identical bytes to every link.
      const std::string frame = FramedTransport::encodeFrame(
          FrameType::kEpoch,
          encodeEpochPayload(
              epochIndex, std::span<const workload::RequestEvent>(
                              batch->raw.data(), n)));
      for (FramedTransport* link : links_) {
        link->setEpoch(epochIndex);
        link->sendEncoded(frame);
      }
      ingest.release(batch);

      // Convergecast: merge per-shard stats. Integer serve-load deltas
      // sum additively (each object is served by exactly one owner),
      // so the merged maps are bit-identical to single-process serving
      // for any shard count.
      double epochBusy = 0.0;
      double lowerBound = 0.0;
      bool anyWantsHandoff = false;
      bool migratable = true;
      for (int s = 0; s < shards; ++s) {
        Frame statsFrame = expect(s, FrameType::kStats, epochIndex);
        const StatsMsg stats = StatsMsg::decode(statsFrame.payload);
        if (stats.epoch != epochIndex) {
          throw serve::Error(serve::Stage::Frame, epochIndex,
                             "shard " + std::to_string(s) +
                                 ": stats for epoch " +
                                 std::to_string(stats.epoch));
        }
        if (stats.serveLoads.size() != static_cast<std::size_t>(edgeCount)) {
          throw serve::Error(serve::Stage::Frame, epochIndex,
                             "shard " + std::to_string(s) +
                                 ": serve-load vector has " +
                                 std::to_string(stats.serveLoads.size()) +
                                 " edges, tree has " +
                                 std::to_string(edgeCount));
        }
        for (net::EdgeId e = 0; e < edgeCount; ++e) {
          const auto load = static_cast<core::Count>(
              stats.serveLoads[static_cast<std::size_t>(e)]);
          if (load != 0) {
            loads_.addEdgeLoad(e, load);
            serveLoads_.addEdgeLoad(e, load);
          }
        }
        // Every worker computes the analytic bound over the SAME full
        // matrix — bitwise divergence means a shard saw a different
        // epoch than its peers. Cheapest distributed-determinism check
        // there is, so it runs every epoch.
        if (s == 0) {
          lowerBound = stats.lowerBound;
        } else if (stats.lowerBound != lowerBound) {
          throw serve::Error(serve::Stage::Serve, epochIndex,
                             "shard " + std::to_string(s) +
                                 ": lower-bound divergence (" +
                                 std::to_string(stats.lowerBound) + " vs " +
                                 std::to_string(lowerBound) + ")");
        }
        anyWantsHandoff = anyWantsHandoff || stats.wantsHandoff != 0;
        migratable = migratable && stats.migratable != 0;
        epochBusy = std::max(epochBusy, stats.busyMs);
      }
      lastLowerBound = lowerBound;

      serve::EpochRecord record;
      record.index = epochIndex;
      record.requests = n;
      record.degraded = acquired.degraded;
      record.lowerBound = lowerBound;
      record.congestion = loads_.congestion(tree);

      // Decide: the single-process drift trigger over merged
      // serve-only congestion, OR the policies' own handoff requests
      // (a per-object OR, so OR-over-shards equals the single-process
      // poll). Broadcast the decision either way — workers block on it.
      const double serveCongestion = serveLoads_.congestion(tree);
      const bool replace =
          migratable &&
          (drift_.fired(serveCongestion, lowerBound) || anyWantsHandoff);
      DecideMsg decide;
      decide.epoch = epochIndex;
      decide.replace = replace ? 1 : 0;
      const std::string decideFrame = FramedTransport::encodeFrame(
          FrameType::kDecide, decide.encode());
      for (FramedTransport* link : links_) link->sendEncoded(decideFrame);

      if (replace) {
        // Migrate wave: every shard applies the §4 re-placement to its
        // owned objects and reports the charged traffic.
        double migrateBusy = 0.0;
        for (int s = 0; s < shards; ++s) {
          Frame migrateFrame = expect(s, FrameType::kMigrate, epochIndex);
          const MigrateMsg migrate = MigrateMsg::decode(migrateFrame.payload);
          if (migrate.loads.size() != static_cast<std::size_t>(edgeCount)) {
            throw serve::Error(serve::Stage::Frame, epochIndex,
                               "shard " + std::to_string(s) +
                                   ": migration-load vector size mismatch");
          }
          for (net::EdgeId e = 0; e < edgeCount; ++e) {
            const auto load = static_cast<core::Count>(
                migrate.loads[static_cast<std::size_t>(e)]);
            if (load != 0) loads_.addEdgeLoad(e, load);
          }
          migrateBusy = std::max(migrateBusy, migrate.busyMs);
        }
        epochBusy += migrateBusy;
        ++report.replacements;
        record.replaced = true;
        record.congestion = loads_.congestion(tree);  // migration included
        drift_.reset(serveCongestion, lowerBound);
      }

      record.ratio =
          dynamic::competitiveRatio(record.congestion, record.lowerBound);
      record.wallMs = epochTimer.millis();
      epochMs.add(record.wallMs);
      report.criticalPathMs += epochBusy;
      log_.push_back(record);
      ++report.epochs;
      report.totalRequests += n;
    }

    // Fin wave: collect per-shard summaries and release the workers.
    const std::string finFrame =
        FramedTransport::encodeFrame(FrameType::kFin, {});
    for (FramedTransport* link : links_) link->sendEncoded(finFrame);
    std::uint64_t shardRequestSum = 0;
    for (int s = 0; s < shards; ++s) {
      Frame ackFrame = expect(s, FrameType::kFinAck, report.epochs);
      const FinAckMsg ack = FinAckMsg::decode(ackFrame.payload);
      ShardBreakdown breakdown;
      breakdown.shard = s;
      breakdown.requests = ack.requests;
      breakdown.busyMs = ack.busyMs;
      breakdown.replications = static_cast<core::Count>(ack.replications);
      breakdown.invalidations = static_cast<core::Count>(ack.invalidations);
      breakdown.bytesToWorker =
          links_[static_cast<std::size_t>(s)]->bytesSent();
      breakdown.bytesFromWorker =
          links_[static_cast<std::size_t>(s)]->bytesReceived();
      breakdown.policyMetrics = ack.policyMetrics;
      shardRequestSum += ack.requests;
      report.replications += breakdown.replications;
      report.invalidations += breakdown.invalidations;
      report.crossShardBytes +=
          breakdown.bytesToWorker + breakdown.bytesFromWorker;
      report.shards.push_back(std::move(breakdown));
    }
    // Ownership soundness: every event is served by exactly one shard.
    if (shardRequestSum != report.totalRequests) {
      throw serve::Error(serve::Stage::Serve, report.epochs,
                         "shards served " + std::to_string(shardRequestSum) +
                             " of " + std::to_string(report.totalRequests) +
                             " requests (partition overlap or gap)");
    }
    closeAll();

    report.wallMs = total.millis();
    report.requestsPerSec =
        report.wallMs > 0.0
            ? static_cast<double>(report.totalRequests) / report.wallMs * 1e3
            : 0.0;
    report.requestsPerSecCritical =
        report.criticalPathMs > 0.0
            ? static_cast<double>(report.totalRequests) /
                  report.criticalPathMs * 1e3
            : 0.0;
    report.epochMsP50 = epochMs.empty() ? 0.0 : epochMs.percentile(50.0);
    report.epochMsP99 = epochMs.empty() ? 0.0 : epochMs.percentile(99.0);
    report.epochMsP999 = epochMs.empty() ? 0.0 : epochMs.percentile(99.9);
    report.congestion = loads_.congestion(tree);
    report.lowerBound = lastLowerBound;
    report.ratio =
        dynamic::competitiveRatio(report.congestion, report.lowerBound);
    report.bytesPerRequest =
        report.totalRequests > 0
            ? static_cast<double>(report.crossShardBytes) /
                  static_cast<double>(report.totalRequests)
            : 0.0;
    return report;
  } catch (...) {
    closeAll();
    throw;
  }
}

}  // namespace hbn::shard
