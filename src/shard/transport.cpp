#include "hbn/shard/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "hbn/serve/error.h"

namespace hbn::shard {
namespace {

/// One direction of a loopback link: a byte queue with its own lock.
struct LoopbackPipe {
  std::mutex mutex;
  std::condition_variable cv;
  std::string buffer;
  std::size_t readPos = 0;
  bool closed = false;
};

class LoopbackChannel final : public ByteChannel {
 public:
  LoopbackChannel(std::shared_ptr<LoopbackPipe> in,
                  std::shared_ptr<LoopbackPipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~LoopbackChannel() override { LoopbackChannel::close(); }

  void writeAll(const void* data, std::size_t n) override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (out_->closed) {
      throw std::runtime_error("loopback: peer closed the channel");
    }
    out_->buffer.append(static_cast<const char*>(data), n);
    out_->cv.notify_one();
  }

  std::ptrdiff_t readSome(void* dst, std::size_t n,
                          double timeoutMs) override {
    std::unique_lock<std::mutex> lock(in_->mutex);
    const auto ready = [this] {
      return in_->readPos < in_->buffer.size() || in_->closed;
    };
    if (timeoutMs > 0.0) {
      if (!in_->cv.wait_for(
              lock, std::chrono::duration<double, std::milli>(timeoutMs),
              ready)) {
        return -1;
      }
    } else {
      in_->cv.wait(lock, ready);
    }
    const std::size_t available = in_->buffer.size() - in_->readPos;
    if (available == 0) return 0;  // closed and drained
    const std::size_t take = std::min(n, available);
    std::memcpy(dst, in_->buffer.data() + in_->readPos, take);
    in_->readPos += take;
    if (in_->readPos == in_->buffer.size()) {
      in_->buffer.clear();
      in_->readPos = 0;
    }
    return static_cast<std::ptrdiff_t>(take);
  }

  void close() noexcept override {
    for (const auto& pipe : {in_, out_}) {
      std::lock_guard<std::mutex> lock(pipe->mutex);
      pipe->closed = true;
      pipe->cv.notify_all();
    }
  }

 private:
  std::shared_ptr<LoopbackPipe> in_;
  std::shared_ptr<LoopbackPipe> out_;
};

class SocketChannel final : public ByteChannel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}

  ~SocketChannel() override { SocketChannel::close(); }

  void writeAll(const void* data, std::size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      // MSG_NOSIGNAL: a dead peer surfaces as EPIPE here, not SIGPIPE.
      const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("socket send: ") +
                                 std::strerror(errno));
      }
      p += sent;
      n -= static_cast<std::size_t>(sent);
    }
  }

  std::ptrdiff_t readSome(void* dst, std::size_t n,
                          double timeoutMs) override {
    if (timeoutMs > 0.0) {
      struct pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int timeout =
          static_cast<int>(std::min(timeoutMs, 2147483000.0)) + 1;
      for (;;) {
        const int r = ::poll(&pfd, 1, timeout);
        if (r < 0) {
          if (errno == EINTR) continue;
          throw std::runtime_error(std::string("socket poll: ") +
                                   std::strerror(errno));
        }
        if (r == 0) return -1;
        break;
      }
    }
    for (;;) {
      const ssize_t got = ::read(fd_, dst, n);
      if (got < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("socket read: ") +
                                 std::strerror(errno));
      }
      return got;
    }
  }

  void close() noexcept override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

}  // namespace

std::string FramedTransport::encodeFrame(FrameType type,
                                         std::string_view payload) {
  WireWriter header;
  header.u32(kFrameMagic);
  header.u32(static_cast<std::uint32_t>(type));
  header.u64(payload.size());
  std::string frame = header.take();
  frame.append(payload);
  WireWriter trailer;
  trailer.u64(fnv1a(payload));
  frame.append(trailer.take());
  return frame;
}

void FramedTransport::send(FrameType type, std::string_view payload) {
  sendEncoded(encodeFrame(type, payload));
}

void FramedTransport::sendEncoded(std::string_view frame) {
  try {
    channel_->writeAll(frame.data(), frame.size());
  } catch (const std::exception& e) {
    throw serve::Error(serve::Stage::Peer, epoch_, e.what());
  }
  bytesSent_ += frame.size();
}

void FramedTransport::readExact(void* dst, std::size_t n, double timeoutMs,
                                bool atFrameStart) {
  char* p = static_cast<char*>(dst);
  std::size_t done = 0;
  while (done < n) {
    std::ptrdiff_t got = 0;
    try {
      got = channel_->readSome(p + done, n - done, timeoutMs);
    } catch (const std::exception& e) {
      throw serve::Error(serve::Stage::Peer, epoch_, e.what());
    }
    if (got < 0) {
      throw serve::Error(serve::Stage::Peer, epoch_,
                         "peer unresponsive after " +
                             std::to_string(timeoutMs) + " ms");
    }
    if (got == 0) {
      if (atFrameStart && done == 0) {
        throw serve::Error(serve::Stage::Peer, epoch_,
                           "peer closed the connection");
      }
      throw serve::Error(serve::Stage::Frame, epoch_,
                         "truncated frame (connection cut mid-frame)");
    }
    done += static_cast<std::size_t>(got);
  }
}

Frame FramedTransport::recv(double timeoutMs) {
  char header[kFrameHeaderBytes];
  readExact(header, sizeof(header), timeoutMs, /*atFrameStart=*/true);
  WireReader r(std::string_view(header, sizeof(header)));
  const std::uint32_t magic = r.u32();
  const std::uint32_t type = r.u32();
  const std::uint64_t payloadLen = r.u64();
  if (magic != kFrameMagic) {
    throw serve::Error(serve::Stage::Frame, epoch_,
                       "bad frame magic 0x" + [&] {
                         char buf[16];
                         std::snprintf(buf, sizeof(buf), "%08x", magic);
                         return std::string(buf);
                       }());
  }
  if (payloadLen > kMaxFramePayload) {
    throw serve::Error(serve::Stage::Frame, epoch_,
                       "oversized length prefix (" +
                           std::to_string(payloadLen) + " > " +
                           std::to_string(kMaxFramePayload) + ")");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(static_cast<std::size_t>(payloadLen));
  if (payloadLen > 0) {
    readExact(frame.payload.data(), frame.payload.size(), timeoutMs,
              /*atFrameStart=*/false);
  }
  char trailer[kFrameTrailerBytes];
  readExact(trailer, sizeof(trailer), timeoutMs, /*atFrameStart=*/false);
  WireReader t(std::string_view(trailer, sizeof(trailer)));
  const std::uint64_t checksum = t.u64();
  if (checksum != fnv1a(frame.payload)) {
    throw serve::Error(serve::Stage::Frame, epoch_,
                       std::string("checksum mismatch on ") +
                           frameTypeName(frame.type) + " frame");
  }
  bytesReceived_ += kFrameHeaderBytes + payloadLen + kFrameTrailerBytes;
  return frame;
}

std::pair<std::unique_ptr<ByteChannel>, std::unique_ptr<ByteChannel>>
makeLoopbackPair() {
  auto aToB = std::make_shared<LoopbackPipe>();
  auto bToA = std::make_shared<LoopbackPipe>();
  return {std::make_unique<LoopbackChannel>(bToA, aToB),
          std::make_unique<LoopbackChannel>(aToB, bToA)};
}

std::unique_ptr<ByteChannel> makeSocketChannel(int fd) {
  return std::make_unique<SocketChannel>(fd);
}

std::pair<int, int> makeSocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error(std::string("socketpair: ") +
                             std::strerror(errno));
  }
  return {fds[0], fds[1]};
}

}  // namespace hbn::shard
