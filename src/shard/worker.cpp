#include "hbn/shard/worker.h"

#include <ctime>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/core/parallel.h"
#include "hbn/dynamic/harness.h"
#include "hbn/dynamic/online_policy.h"
#include "hbn/net/rooted.h"
#include "hbn/net/serialize.h"
#include "hbn/serve/error.h"
#include "hbn/shard/partition.h"
#include "hbn/util/timer.h"
#include "hbn/workload/workload.h"

namespace hbn::shard {
namespace {

using workload::ObjectId;
using workload::RequestEvent;

/// CPU milliseconds burned by THIS thread so far. busyMs feeds the
/// coordinator's critical-path metric (Σ max-over-shards per epoch),
/// which models truly parallel workers; a wall clock would bill each
/// worker for its siblings' quanta whenever workers outnumber cores
/// and make the metric meaningless on small machines. The thread clock
/// counts only cycles this worker spent. Exact while the shard serves
/// on the transport thread (threads <= 1, the benchmark shape); with
/// worker-internal serve threads the stripes bill their own clocks and
/// busyMs undercounts — the honest wall clock is reported alongside.
double threadCpuMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

/// The worker's serving stack, built once from the Hello frame.
class ShardWorker {
 public:
  ShardWorker(FramedTransport& transport, const HelloMsg& hello)
      : transport_(transport),
        tree_(net::parseText(hello.treeText)),
        rooted_(tree_, tree_.defaultRoot()),
        partition_(static_cast<Partition::Kind>(hello.partitionKind),
                   hello.shardCount, hello.partitionSeed, hello.numObjects),
        shardId_(hello.shardId),
        numObjects_(hello.numObjects),
        threads_(hello.threads),
        policy_(dynamic::OnlinePolicyRegistry::global()
                    .create(hello.policySpec)
                    ->build(rooted_, hello.numObjects,
                            tree_.processors().front())),
        aggregated_(hello.numObjects, tree_.nodeCount()),
        lowerBound_(rooted_),
        epochServeLoads_(tree_.edgeCount()),
        offsets_(static_cast<std::size_t>(hello.numObjects) + 1, 0) {
    const int workers = core::resolveWorkerCount(threads_, numObjects_);
    workerLoads_.reserve(static_cast<std::size_t>(workers));
    workerAcc_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      workerLoads_.emplace_back(tree_.edgeCount());
      workerAcc_.emplace_back(policy_->flatView());
    }
    workerStats_.resize(static_cast<std::size_t>(workers));
    workerScratch_.resize(static_cast<std::size_t>(workers));
    servedThisEpoch_.assign(static_cast<std::size_t>(workers), 0);
    lowerBound_.rebuild(aggregated_);
  }

  /// Serves Epoch/Decide/Fin frames until Fin; throws serve::Error on
  /// protocol violations and injected/structural failures.
  void run() {
    for (;;) {
      Frame frame = transport_.recv();
      switch (frame.type) {
        case FrameType::kEpoch:
          serveEpoch(frame.payload);
          break;
        case FrameType::kFin: {
          FinAckMsg ack;
          ack.requests = servedRequests_;
          ack.busyMs = totalBusyMs_;
          ack.replications = static_cast<std::int64_t>(replications_);
          ack.invalidations = static_cast<std::int64_t>(invalidations_);
          ack.policyMetrics = policy_->metrics();
          transport_.send(FrameType::kFinAck, ack.encode());
          return;
        }
        case FrameType::kError: {
          const ErrorMsg err = ErrorMsg::decode(frame.payload);
          throw serve::Error(static_cast<serve::Stage>(err.stage), err.epoch,
                             "coordinator: " + err.cause);
        }
        default:
          throw serve::Error(serve::Stage::Frame, epoch_,
                             std::string("unexpected ") +
                                 frameTypeName(frame.type) + " frame");
      }
    }
  }

 private:
  void serveEpoch(const std::string& payload) {
    // Busy time starts at decode: deserialisation, bucketing, serving,
    // aggregation and the lower-bound refresh are this shard's
    // critical-path work for the epoch; the blocking recv above is not.
    const double busyStart = threadCpuMs();
    const EpochMsg msg = [&] {
      try {
        return EpochMsg::decode(payload);
      } catch (const std::exception& e) {
        throw serve::Error(serve::Stage::Frame, epoch_, e.what());
      }
    }();
    epoch_ = msg.epoch;
    transport_.setEpoch(epoch_);
    const std::size_t n = msg.events.size();
    for (const RequestEvent& ev : msg.events) {
      if (ev.object < 0 || ev.object >= numObjects_) {
        throw serve::Error(serve::Stage::Ingest, epoch_,
                           "request object out of range");
      }
    }
    bucketed_.resize(n);
    dynamic::bucketRequestsByObject(msg.events, numObjects_, offsets_,
                                    bucketed_);

    // Serve owned∩touched objects only — the shard's slice of the
    // epoch. Identical bucketing plus per-object serving means the
    // union over shards reproduces the single-process epoch exactly.
    const int workers = static_cast<int>(workerLoads_.size());
    for (int w = 0; w < workers; ++w) {
      workerLoads_[static_cast<std::size_t>(w)].clear();
      workerStats_[static_cast<std::size_t>(w)] = {};
    }
    core::parallelForObjects(
        numObjects_, threads_, [&](ObjectId x, int worker) {
          const std::size_t begin = offsets_[static_cast<std::size_t>(x)];
          const std::size_t end = offsets_[static_cast<std::size_t>(x) + 1];
          if (begin == end) return;
          if (partition_.ownerOf(x) != shardId_) return;
          const auto w = static_cast<std::size_t>(worker);
          const dynamic::ShardStats stats = policy_->serveShard(
              x,
              std::span<const RequestEvent>(bucketed_.data() + begin,
                                            end - begin),
              workerLoads_[w], workerScratch_[w], &workerAcc_[w]);
          workerStats_[w].replications += stats.replications;
          workerStats_[w].invalidations += stats.invalidations;
          servedThisEpoch_[w] += end - begin;
        });

    epochServeLoads_.clear();
    std::uint64_t served = 0;
    for (int w = 0; w < workers; ++w) {
      const auto& partial = workerLoads_[static_cast<std::size_t>(w)];
      for (net::EdgeId e = 0; e < tree_.edgeCount(); ++e) {
        const core::Count load = partial.edgeLoad(e);
        if (load != 0) epochServeLoads_.addEdgeLoad(e, load);
      }
      replications_ += workerStats_[static_cast<std::size_t>(w)].replications;
      invalidations_ +=
          workerStats_[static_cast<std::size_t>(w)].invalidations;
      served += servedThisEpoch_[static_cast<std::size_t>(w)];
      servedThisEpoch_[static_cast<std::size_t>(w)] = 0;
    }
    servedRequests_ += served;

    // Full-matrix aggregation in the single-process order: remove the
    // touched objects' lower-bound terms, fold ALL events (owned or
    // not) into the matrix in arrival order, re-add the touched terms.
    // Every shard holds the complete matrix, so handoff placements that
    // read other rows stay shard-count independent.
    for (ObjectId x = 0; x < numObjects_; ++x) {
      if (offsets_[static_cast<std::size_t>(x)] !=
          offsets_[static_cast<std::size_t>(x) + 1]) {
        lowerBound_.remove(x, aggregated_);
      }
    }
    for (const RequestEvent& ev : msg.events) {
      if (ev.isWrite) {
        aggregated_.addWrites(ev.object, ev.origin, 1);
      } else {
        aggregated_.addReads(ev.object, ev.origin, 1);
      }
    }
    for (ObjectId x = 0; x < numObjects_; ++x) {
      if (offsets_[static_cast<std::size_t>(x)] !=
          offsets_[static_cast<std::size_t>(x) + 1]) {
        lowerBound_.add(x, aggregated_);
      }
    }

    StatsMsg stats;
    stats.epoch = epoch_;
    stats.lowerBound = lowerBound_.congestion();
    stats.busyMs = threadCpuMs() - busyStart;
    stats.wantsHandoff =
        policy_->migratable() && policy_->wantsHandoff() ? 1 : 0;
    stats.migratable = policy_->migratable() ? 1 : 0;
    stats.replications = static_cast<std::int64_t>(replications_);
    stats.invalidations = static_cast<std::int64_t>(invalidations_);
    stats.serveLoads.resize(
        static_cast<std::size_t>(tree_.edgeCount()));
    for (net::EdgeId e = 0; e < tree_.edgeCount(); ++e) {
      stats.serveLoads[static_cast<std::size_t>(e)] =
          epochServeLoads_.edgeLoad(e);
    }
    totalBusyMs_ += stats.busyMs;
    transport_.send(FrameType::kStats, stats.encode());

    // Broadcast leg of the barrier: the coordinator's global decision.
    Frame decideFrame = transport_.recv();
    if (decideFrame.type == FrameType::kError) {
      const ErrorMsg err = ErrorMsg::decode(decideFrame.payload);
      throw serve::Error(static_cast<serve::Stage>(err.stage), err.epoch,
                         "coordinator: " + err.cause);
    }
    if (decideFrame.type != FrameType::kDecide) {
      throw serve::Error(serve::Stage::Frame, epoch_,
                         std::string("expected decide, got ") +
                             frameTypeName(decideFrame.type));
    }
    const DecideMsg decide = DecideMsg::decode(decideFrame.payload);
    if (decide.epoch != epoch_) {
      throw serve::Error(serve::Stage::Frame, epoch_,
                         "decide for epoch " + std::to_string(decide.epoch) +
                             " while serving " + std::to_string(epoch_));
    }
    if (decide.replace != 0) applyReplacement();
  }

  /// The §4 re-placement wave: open a HandoffPass over the full local
  /// matrix (identical on every shard) and migrate every owned object
  /// through the shared per-object step — the barrier-mode drain the
  /// single-process engine runs inside drift epochs.
  void applyReplacement() {
    const double busyStart = threadCpuMs();
    const int workers = static_cast<int>(workerLoads_.size());
    const std::shared_ptr<const workload::Workload> snapshot(
        std::shared_ptr<const workload::Workload>(), &aggregated_);
    std::unique_ptr<dynamic::HandoffPass> pass = [&] {
      try {
        return policy_->beginHandoff(snapshot, workers);
      } catch (const std::exception& e) {
        throw serve::Error(serve::Stage::Handoff, epoch_, e.what());
      }
    }();
    for (int w = 0; w < workers; ++w) {
      workerLoads_[static_cast<std::size_t>(w)].clear();
    }
    core::parallelForObjects(
        numObjects_, threads_, [&](ObjectId x, int worker) {
          if (partition_.ownerOf(x) != shardId_) return;
          const auto w = static_cast<std::size_t>(worker);
          const std::vector<net::NodeId> target = pass->target(x, worker);
          dynamic::applyHandoffTarget(*policy_, x, target, workerAcc_[w],
                                      workerLoads_[w]);
        });
    MigrateMsg migrate;
    migrate.epoch = epoch_;
    migrate.loads.assign(static_cast<std::size_t>(tree_.edgeCount()), 0);
    for (int w = 0; w < workers; ++w) {
      const auto& partial = workerLoads_[static_cast<std::size_t>(w)];
      for (net::EdgeId e = 0; e < tree_.edgeCount(); ++e) {
        migrate.loads[static_cast<std::size_t>(e)] += partial.edgeLoad(e);
      }
    }
    migrate.busyMs = threadCpuMs() - busyStart;
    totalBusyMs_ += migrate.busyMs;
    transport_.send(FrameType::kMigrate, migrate.encode());
  }

  FramedTransport& transport_;
  net::Tree tree_;
  net::RootedTree rooted_;
  Partition partition_;
  int shardId_;
  int numObjects_;
  int threads_;
  std::unique_ptr<dynamic::OnlinePolicy> policy_;
  workload::Workload aggregated_;
  core::IncrementalLowerBound lowerBound_;
  core::LoadMap epochServeLoads_;
  std::vector<std::size_t> offsets_;
  std::vector<RequestEvent> bucketed_;
  std::vector<core::LoadMap> workerLoads_;
  std::vector<core::FlatLoadAccumulator> workerAcc_;
  std::vector<dynamic::ShardStats> workerStats_;
  std::vector<dynamic::ServeScratch> workerScratch_;
  std::vector<std::uint64_t> servedThisEpoch_;
  std::uint64_t epoch_ = 0;
  std::uint64_t servedRequests_ = 0;
  core::Count replications_ = 0;
  core::Count invalidations_ = 0;
  double totalBusyMs_ = 0.0;
};

}  // namespace

void runWorker(FramedTransport& transport) {
  std::uint64_t epoch = 0;
  try {
    Frame hello = transport.recv();
    if (hello.type != FrameType::kHello) {
      throw serve::Error(serve::Stage::Connect, 0,
                         std::string("expected hello, got ") +
                             frameTypeName(hello.type));
    }
    const HelloMsg msg = [&] {
      try {
        return HelloMsg::decode(hello.payload);
      } catch (const std::exception& e) {
        throw serve::Error(serve::Stage::Connect, 0, e.what());
      }
    }();
    if (msg.protocolVersion != kProtocolVersion) {
      throw serve::Error(serve::Stage::Connect, 0,
                         "protocol version mismatch (coordinator " +
                             std::to_string(msg.protocolVersion) +
                             ", worker " + std::to_string(kProtocolVersion) +
                             ")");
    }
    // Stack construction failures — unparsable tree, unknown policy
    // spec, bad partition parameters — are handshake failures.
    auto worker = [&] {
      try {
        return std::make_unique<ShardWorker>(transport, msg);
      } catch (const serve::Error&) {
        throw;
      } catch (const std::exception& e) {
        throw serve::Error(serve::Stage::Connect, 0, e.what());
      }
    }();
    transport.send(FrameType::kHelloAck, {});
    worker->run();
  } catch (const serve::Error& e) {
    // Ship the failure with its stage intact; the coordinator rethrows
    // it with this shard's attribution. Peer errors mean the link
    // itself is gone — nothing to send on.
    if (e.stage() != serve::Stage::Peer) {
      ErrorMsg err;
      err.stage = static_cast<std::uint32_t>(e.stage());
      err.epoch = e.epoch();
      err.cause = e.cause();
      try {
        transport.send(FrameType::kError, err.encode());
      } catch (...) {
      }
    }
    throw;
  } catch (const std::exception& e) {
    ErrorMsg err;
    err.stage = static_cast<std::uint32_t>(serve::Stage::Serve);
    err.epoch = epoch;
    err.cause = e.what();
    try {
      transport.send(FrameType::kError, err.encode());
    } catch (...) {
    }
    throw;
  }
}

int runWorkerProcess(int fd) noexcept {
  try {
    FramedTransport transport(makeSocketChannel(fd));
    runWorker(transport);
    return 0;
  } catch (const serve::Error& e) {
    return e.exitCode();
  } catch (...) {
    return 1;
  }
}

}  // namespace hbn::shard
