// Wire format of the sharded serving protocol.
//
// Every message between the ShardCoordinator and a ShardWorker travels
// as one framed, checksummed byte string:
//
//   +--------+--------+------------+---------....---------+----------+
//   | magic  | type   | payloadLen | payload              | checksum |
//   | u32    | u32    | u64        | payloadLen bytes     | u64      |
//   +--------+--------+------------+---------....---------+----------+
//
// All integers are little-endian. `magic` is kFrameMagic ("HBNF");
// `checksum` is FNV-1a over the payload bytes. The length prefix is
// bounded by kMaxFramePayload so a corrupted prefix cannot drive an
// unbounded allocation. Malformed frames (bad magic, oversized prefix,
// truncated payload, checksum mismatch) surface as
// serve::Error{Stage::Frame}; a connection that closes cleanly between
// frames is Stage::Peer (see hbn/shard/transport.h).
//
// Payload encoding is the minimal WireWriter/WireReader pair below:
// fixed-width little-endian integers, doubles as their IEEE-754 bit
// pattern, strings as u64 length + bytes. Message structs (Hello,
// Epoch, Stats, ...) each provide encode()/decode; decode throws
// std::runtime_error on truncated or out-of-range input, which the
// transport layer attributes to Stage::Frame.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "hbn/workload/workload.h"

namespace hbn::shard {

inline constexpr std::uint32_t kFrameMagic = 0x48424E46;  // "HBNF"
inline constexpr std::uint64_t kMaxFramePayload = 1ULL << 28;
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Frame header bytes (magic + type + payloadLen) and trailer bytes
/// (checksum).
inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kFrameTrailerBytes = 8;

/// Message kinds, in protocol order. One serve run is:
///   Hello -> HelloAck, then per epoch Epoch -> Stats -> Decide
///   [-> Migrate when Decide.replace], then Fin -> FinAck.
/// Either side may send Error instead of its next expected frame.
enum class FrameType : std::uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kEpoch = 3,
  kStats = 4,
  kDecide = 5,
  kMigrate = 6,
  kFin = 7,
  kFinAck = 8,
  kError = 9,
};

[[nodiscard]] const char* frameTypeName(FrameType type) noexcept;

/// FNV-1a over `bytes` — the frame checksum.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept;

/// Appends little-endian fields to a byte string.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { appendLe(v); }
  void u64(std::uint64_t v) { appendLe(v); }
  void i32(std::int32_t v) { appendLe(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { appendLe(static_cast<std::uint64_t>(v)); }
  void f64(double v) { appendLe(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view v) {
    u64(v.size());
    out_.append(v);
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  template <typename T>
  void appendLe(T v) {
    char bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_.append(bytes, sizeof(T));
  }

  std::string out_;
};

/// Reads little-endian fields off a byte string; throws
/// std::runtime_error on underflow or an out-of-range length.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() { return readLe<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return readLe<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(readLe<std::uint32_t>());
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(readLe<std::uint64_t>());
  }
  [[nodiscard]] double f64() {
    return std::bit_cast<double>(readLe<std::uint64_t>());
  }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    if (n > bytes_.size() - pos_) {
      throw std::runtime_error("wire: string length exceeds payload");
    }
    std::string s(bytes_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Every payload byte must be consumed — trailing garbage means the
  /// two sides disagree about the message layout.
  void finish() const {
    if (pos_ != bytes_.size()) {
      throw std::runtime_error("wire: trailing bytes in payload");
    }
  }

 private:
  void need(std::size_t n) const {
    if (n > bytes_.size() - pos_) {
      throw std::runtime_error("wire: truncated payload");
    }
  }
  template <typename T>
  [[nodiscard]] T readLe() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// Coordinator -> worker: the run configuration. The worker rebuilds
/// the full serving stack (tree, policy, partition) from this one
/// message, so a worker process needs nothing but its socket.
struct HelloMsg {
  std::uint32_t protocolVersion = kProtocolVersion;
  std::int32_t shardId = 0;
  std::int32_t shardCount = 1;
  std::int32_t numObjects = 0;
  std::uint64_t epochSize = 0;
  std::int32_t threads = 1;
  std::uint8_t partitionKind = 0;  ///< Partition::Kind as u8
  std::uint64_t partitionSeed = 0;
  std::string policySpec;
  std::string treeText;  ///< net::toText of the serving topology

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static HelloMsg decode(std::string_view payload);
};

/// Coordinator -> worker: one full epoch, broadcast to every shard.
/// Workers aggregate all events (the full-matrix invariant that keeps
/// handoff placements shard-count independent) but serve only the
/// objects they own.
struct EpochMsg {
  std::uint64_t epoch = 0;
  std::vector<workload::RequestEvent> events;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static EpochMsg decode(std::string_view payload);
};

/// Worker -> coordinator after serving an epoch: the convergecast leg
/// of the epoch barrier. Serve loads are this epoch's deltas for the
/// worker's owned objects; lowerBound is the worker's full-matrix
/// analytic bound (bit-identical across shards — the coordinator
/// asserts it as a determinism cross-check).
struct StatsMsg {
  std::uint64_t epoch = 0;
  double lowerBound = 0.0;
  double busyMs = 0.0;
  std::uint8_t wantsHandoff = 0;
  std::uint8_t migratable = 0;
  std::int64_t replications = 0;
  std::int64_t invalidations = 0;
  std::vector<std::int64_t> serveLoads;  ///< per-edge delta

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static StatsMsg decode(std::string_view payload);
};

/// Coordinator -> worker: the broadcast leg of the barrier — whether
/// the §4 re-placement wave runs this epoch.
struct DecideMsg {
  std::uint64_t epoch = 0;
  std::uint8_t replace = 0;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static DecideMsg decode(std::string_view payload);
};

/// Worker -> coordinator after applying a re-placement: the migration
/// traffic charged for its owned objects.
struct MigrateMsg {
  std::uint64_t epoch = 0;
  double busyMs = 0.0;
  std::vector<std::int64_t> loads;  ///< per-edge migration delta

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static MigrateMsg decode(std::string_view payload);
};

/// Worker -> coordinator at end of stream: per-shard summary for the
/// aggregate report's breakdown.
struct FinAckMsg {
  std::uint64_t requests = 0;  ///< events served (owned objects)
  double busyMs = 0.0;         ///< total busy time across epochs
  std::int64_t replications = 0;
  std::int64_t invalidations = 0;
  std::map<std::string, double> policyMetrics;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static FinAckMsg decode(std::string_view payload);
};

/// Either direction: a stage failure shipped with its serve::Error
/// attribution intact, so exit codes survive the wire.
struct ErrorMsg {
  std::uint32_t stage = 0;  ///< serve::Stage as u32
  std::uint64_t epoch = 0;
  std::string cause;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static ErrorMsg decode(std::string_view payload);
};

}  // namespace hbn::shard
