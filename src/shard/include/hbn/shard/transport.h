// Pluggable byte transports and the framed message layer over them.
//
// A ByteChannel is one reliable, ordered, bidirectional byte pipe to a
// peer. Two implementations ship:
//
//   loopback  an in-process pair of mutex/condvar byte queues — the
//             coordinator and worker run as threads of one process.
//             Zero syscalls, deterministic, what the digest-identity
//             tests and the 1-worker ≡ single-process check run on.
//   socket    an AF_UNIX SOCK_STREAM socketpair — the real
//             multi-process deployment (see hbn/shard/process.h for
//             fork/exec plumbing).
//
// FramedTransport wraps a channel with the wire.h frame format: every
// send is one length-prefixed, checksummed frame; every recv validates
// magic, length bound and checksum before handing the payload up.
// Failures map onto the serve::Error taxonomy:
//
//   Stage::Peer   clean close between frames, peer unresponsive past
//                 the recv timeout, or a write onto a closed channel
//   Stage::Frame  bad magic, oversized length prefix, checksum
//                 mismatch, or a connection cut mid-frame (truncation)
//
// setEpoch() tells the transport which epoch the protocol is in so
// those errors carry the right attribution. Byte counters on both
// directions feed the cross-shard-traffic accounting of the sharded
// report (every byte between coordinator and workers counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "hbn/shard/wire.h"

namespace hbn::shard {

/// One reliable ordered byte pipe to a peer. Implementations are
/// single-reader/single-writer per direction (the shard protocol is
/// strictly request/response on each link).
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  /// Writes all `n` bytes; throws std::runtime_error when the peer end
  /// is closed.
  virtual void writeAll(const void* data, std::size_t n) = 0;

  /// Reads up to `n` bytes into `dst`. Returns the count read (>= 1),
  /// 0 on clean end-of-stream, or -1 when `timeoutMs` > 0 elapsed with
  /// nothing to read. `timeoutMs` <= 0 waits forever.
  [[nodiscard]] virtual std::ptrdiff_t readSome(void* dst, std::size_t n,
                                                double timeoutMs) = 0;

  /// Closes this end; the peer's reads see end-of-stream once the
  /// buffered bytes drain. Idempotent.
  virtual void close() noexcept = 0;
};

/// One received frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// The framed message layer over one ByteChannel.
class FramedTransport {
 public:
  explicit FramedTransport(std::unique_ptr<ByteChannel> channel)
      : channel_(std::move(channel)) {}

  /// Encodes one frame — header, payload, checksum — as raw bytes.
  /// Exposed so the coordinator can encode a broadcast epoch ONCE and
  /// write identical bytes to every worker link.
  [[nodiscard]] static std::string encodeFrame(FrameType type,
                                               std::string_view payload);

  void send(FrameType type, std::string_view payload);
  /// Writes an encodeFrame()-produced byte string as-is.
  void sendEncoded(std::string_view frame);

  /// Blocks for the next frame, validating magic, length bound and
  /// checksum. `timeoutMs` > 0 is the peer watchdog: past it the recv
  /// fails with Stage::Peer instead of hanging on a dead worker.
  [[nodiscard]] Frame recv(double timeoutMs = 0.0);

  /// Epoch attribution for transport errors raised from now on.
  void setEpoch(std::uint64_t epoch) noexcept { epoch_ = epoch; }

  [[nodiscard]] std::uint64_t bytesSent() const noexcept {
    return bytesSent_;
  }
  [[nodiscard]] std::uint64_t bytesReceived() const noexcept {
    return bytesReceived_;
  }

  void close() noexcept { channel_->close(); }

 private:
  /// Reads exactly `n` bytes or fails: 0 bytes -> Peer (clean close),
  /// partial -> Frame (truncated), timeout -> Peer (unresponsive).
  /// `atFrameStart` selects the clean-close attribution.
  void readExact(void* dst, std::size_t n, double timeoutMs,
                 bool atFrameStart);

  std::unique_ptr<ByteChannel> channel_;
  std::uint64_t epoch_ = 0;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t bytesReceived_ = 0;
};

/// Builds a connected loopback channel pair: bytes written to `first`
/// are read from `second` and vice versa.
[[nodiscard]] std::pair<std::unique_ptr<ByteChannel>,
                        std::unique_ptr<ByteChannel>>
makeLoopbackPair();

/// Wraps an AF_UNIX stream socket file descriptor; takes ownership.
[[nodiscard]] std::unique_ptr<ByteChannel> makeSocketChannel(int fd);

/// Creates a connected AF_UNIX SOCK_STREAM socketpair; throws
/// std::runtime_error on failure.
[[nodiscard]] std::pair<int, int> makeSocketPair();

}  // namespace hbn::shard
