// Worker lifecycle plumbing for the sharded serving engine.
//
// A ShardCluster owns N worker endpoints and the transports to them;
// the ShardCoordinator borrows the links. Three flavours:
//
//   loopback   workers are threads of this process over in-memory
//              channels (makeLoopbackCluster) — deterministic, no
//              syscalls; what the digest-identity tests run.
//   fork       workers are fork()ed child processes over AF_UNIX
//              socketpairs, running shard::runWorkerProcess directly
//              (makeForkCluster) — real process isolation without
//              needing the binary's path, so tests and benchmarks can
//              spawn workers from any host binary.
//   exec       workers are fork()+exec()ed fresh processes of this
//              very binary with the hidden --shard-worker-fd=K flag
//              (makeExecCluster) — the production shape hbn_serve
//              --transport=socket uses. Worker processes exit with the
//              serve::Error stage code (10-17) on failure, so
//              supervisors see the same taxonomy as the coordinator.
//
// Fault handling: join() reaps children and converts a nonzero worker
// exit into serve::Error{Peer}; kill() (also run by the destructor for
// still-live children) SIGKILLs and reaps, so a coordinator failure
// never leaks orphan processes.
#pragma once

#include <memory>
#include <vector>

#include "hbn/shard/transport.h"

namespace hbn::shard {

class ShardCluster {
 public:
  virtual ~ShardCluster() = default;

  /// Connected transports, one per worker; the cluster keeps ownership.
  [[nodiscard]] virtual std::vector<FramedTransport*> links() = 0;

  /// Waits for every worker to finish cleanly; throws
  /// serve::Error{Peer} when a worker process exited nonzero or died
  /// on a signal. Call after the coordinator's serve() returns.
  virtual void join() = 0;

  /// Force-terminates every still-running worker. Idempotent; never
  /// throws. The destructor runs this, so dropping the cluster on a
  /// fault path reaps all children.
  virtual void kill() noexcept = 0;
};

/// N worker threads over loopback channels.
[[nodiscard]] std::unique_ptr<ShardCluster> makeLoopbackCluster(int workers);

/// N fork()ed child processes over socketpairs (no exec).
[[nodiscard]] std::unique_ptr<ShardCluster> makeForkCluster(int workers);

/// N fork()+exec()ed processes of the current binary with
/// --shard-worker-fd; requires the calling binary's main to call
/// maybeRunWorkerMain first. Throws std::runtime_error when the
/// executable path cannot be resolved.
[[nodiscard]] std::unique_ptr<ShardCluster> makeExecCluster(int workers);

/// The hidden worker-mode hook: when argv carries --shard-worker-fd=K,
/// runs the worker protocol over fd K and returns its exit code;
/// returns -1 otherwise (the caller proceeds with its normal main).
/// Every binary that can act as an exec-cluster worker calls this
/// first thing in main.
[[nodiscard]] int maybeRunWorkerMain(int argc, char** argv);

/// Absolute path of the running executable (/proc/self/exe); empty
/// when unresolvable.
[[nodiscard]] std::string currentExecutablePath();

}  // namespace hbn::shard
