// Object-space partitioning for the sharded serving engine.
//
// A Partition maps every object id to exactly one owning shard; it is
// pure arithmetic over (kind, shards, seed, numObjects), so the
// coordinator and every worker compute identical ownership from the
// Hello parameters alone — no ownership table ever crosses the wire.
//
//   hash   splitmix64 over a seed-salted object id, reduced mod the
//          shard count: spreads hot objects independently of their ids
//          (the right default for skewed streams, where range blocks
//          would pin the whole hot set onto one shard).
//   range  contiguous equal blocks of the id space: preserves id
//          locality and makes ownership predictable for operators.
//
// Determinism contract (property-tested): every object has exactly one
// owner in [0, shards); re-instantiating with equal parameters is a
// fixed point; hash ownership is independent of the shard a query runs
// on.
#pragma once

#include <cstdint>
#include <string>

#include "hbn/workload/workload.h"

namespace hbn::shard {

class Partition {
 public:
  enum class Kind : std::uint8_t { Hash = 0, Range = 1 };

  /// Throws std::invalid_argument when shards < 1 or numObjects < 0.
  Partition(Kind kind, int shards, std::uint64_t seed, int numObjects);

  /// The owning shard of `x`, in [0, shards()).
  [[nodiscard]] int ownerOf(workload::ObjectId x) const noexcept;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] int shards() const noexcept { return shards_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] int numObjects() const noexcept { return numObjects_; }

 private:
  Kind kind_;
  int shards_;
  std::uint64_t seed_;
  int numObjects_;
  int blockSize_;  ///< range mode: objects per shard block
};

[[nodiscard]] const char* partitionKindName(Partition::Kind kind) noexcept;

/// Parses "hash" | "range"; throws std::invalid_argument otherwise.
[[nodiscard]] Partition::Kind parsePartitionKind(const std::string& name);

}  // namespace hbn::shard
