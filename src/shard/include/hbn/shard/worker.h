// ShardWorker — one shard of the sharded serving engine.
//
// A worker owns an object-space shard and runs the existing
// OnlinePolicy serving stack over it, driven entirely by frames from
// the coordinator (see hbn/shard/wire.h for the protocol):
//
//   Hello      build the full stack from the wire: parse the tree,
//              instantiate the policy, derive the Partition.
//   Epoch      serve the epoch. Every shard receives the FULL epoch
//              and aggregates ALL events into a complete frequency
//              matrix (plus the full-matrix incremental lower bound),
//              but serves only owned∩touched objects. The full-matrix
//              invariant is what keeps §4 handoff placements — which
//              may read other objects' rows (static:placement=
//              extended-nibble steers its mapping by the basic loads
//              of every object) — bit-identical for any shard count.
//   Decide     the coordinator's global re-placement decision. On
//              replace the worker opens a HandoffPass over its (full,
//              identical) matrix and applies the target to every owned
//              object through dynamic::applyHandoffTarget — the same
//              per-object migration step the single-process engine
//              runs — then reports the charged traffic in Migrate.
//   Fin        report the shard summary (FinAck) and return.
//
// Failures ship as Error frames with their serve::Error stage intact
// before the worker exits, so the coordinator rethrows them with full
// attribution and the right process exit code.
#pragma once

#include "hbn/shard/transport.h"

namespace hbn::shard {

/// Runs the worker protocol loop over `transport` until Fin or error.
/// serve::Error (own failures and injected ones alike) is sent to the
/// coordinator as an Error frame and rethrown; transport errors
/// (coordinator death) are rethrown directly.
void runWorker(FramedTransport& transport);

/// Worker entry for a process of its own: wraps `fd` (an AF_UNIX
/// stream socket to the coordinator) and runs runWorker, mapping
/// serve::Error onto its stage exit code (10-17), std::exception onto
/// 1. Never throws.
[[nodiscard]] int runWorkerProcess(int fd) noexcept;

}  // namespace hbn::shard
