// ShardCoordinator — the fan-out/fan-in side of sharded serving.
//
// The coordinator owns the request stream and the global serving
// state; workers own the per-object serving work. One epoch runs as a
// wave that mirrors the single-process engine's barrier loop (and the
// convergecast/broadcast shape of dist::SyncEngine):
//
//   broadcast     the epoch batch is encoded ONCE (identical bytes on
//                 every link) and fanned out to all workers; ingest of
//                 epoch N+1 overlaps the workers serving epoch N.
//   convergecast  per-shard Stats flow up: serve-load deltas merge
//                 additively into the global LoadMaps (integer loads —
//                 bit-identical for any shard count), counters sum,
//                 and every worker's full-matrix lower bound must be
//                 bit-equal (asserted — a cheap distributed-
//                 determinism check every epoch).
//   decide        the coordinator runs the SAME DriftTrigger
//                 arithmetic as EpochServer over merged serve
//                 congestion and the shared lower bound, ORs in the
//                 policies' own handoff requests, and broadcasts the
//                 decision.
//   migrate       on replace, workers hand back their migration-load
//                 deltas, which merge into the global map before the
//                 epoch record is cut.
//
// The final loads, counters, lower bound and congestion are therefore
// bit-identical to the single-process EpochServer on the same stream
// for every registered policy — the identity the e16 experiment and
// tests/shard_serving_test.cpp pin down.
//
// Failure handling: an Error frame from any worker, a malformed frame,
// or a peer death/timeout surfaces as serve::Error with its original
// stage (exit codes 10-17 survive the wire). The coordinator closes
// every link before rethrowing, so remaining workers see end-of-stream
// and exit; process clusters then reap the children
// (hbn/shard/process.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hbn/core/load.h"
#include "hbn/net/rooted.h"
#include "hbn/serve/drift.h"
#include "hbn/serve/epoch_server.h"
#include "hbn/serve/request_stream.h"
#include "hbn/shard/partition.h"
#include "hbn/shard/transport.h"

namespace hbn::shard {

/// Sharded-serving knobs. `serve` carries the per-worker engine
/// configuration (epochSize, policy, replaceDrift, threads);
/// checkpointing/restore and fault injection are single-process
/// features and must be off.
struct ShardOptions {
  serve::ServeOptions serve;
  Partition::Kind partition = Partition::Kind::Hash;
  std::uint64_t partitionSeed = 0;
  /// Peer watchdog: a worker silent for this many milliseconds fails
  /// the run with Stage::Peer instead of hanging it. <= 0 waits
  /// forever.
  double peerTimeoutMs = 0.0;
};

/// Per-shard slice of the aggregate report.
struct ShardBreakdown {
  int shard = 0;
  std::uint64_t requests = 0;  ///< events served (owned objects)
  double busyMs = 0.0;         ///< per-epoch busy time, summed
  core::Count replications = 0;
  core::Count invalidations = 0;
  std::uint64_t bytesToWorker = 0;
  std::uint64_t bytesFromWorker = 0;
  std::map<std::string, double> policyMetrics;
};

/// Aggregate outcome of one sharded serve run.
struct ShardedReport {
  std::string policy;
  std::string transport;   ///< "loopback" | "socket"
  std::string partition;   ///< "hash" | "range"
  int workers = 1;
  std::uint64_t totalRequests = 0;
  std::uint64_t epochs = 0;
  double wallMs = 0.0;
  double requestsPerSec = 0.0;  ///< honest wall-clock throughput
  /// Critical-path time: Σ over epochs of the slowest shard's busy
  /// time (decode + bucket + serve + aggregate + lower bound [+
  /// migration]). On a machine with fewer cores than workers the wall
  /// clock serialises the shards, so this models what N genuinely
  /// parallel workers would take; requestsPerSecCritical is the
  /// scaling metric e16 reports alongside the honest wall clock.
  double criticalPathMs = 0.0;
  double requestsPerSecCritical = 0.0;
  double epochMsP50 = 0.0;
  double epochMsP99 = 0.0;
  double epochMsP999 = 0.0;
  double congestion = 0.0;
  double lowerBound = 0.0;
  double ratio = 0.0;
  std::uint64_t replacements = 0;
  core::Count replications = 0;
  core::Count invalidations = 0;
  /// Coordinator<->worker traffic: every frame byte in both
  /// directions, summed over links.
  std::uint64_t crossShardBytes = 0;
  double bytesPerRequest = 0.0;
  std::vector<ShardBreakdown> shards;
};

class ShardCoordinator {
 public:
  /// `tree` must outlive the coordinator. `links` are connected
  /// transports, one per worker, whose peer ends run
  /// shard::runWorker; the coordinator borrows them (clusters own
  /// them — see hbn/shard/process.h). Throws std::invalid_argument on
  /// unsupported options (checkpointing, fault injection, no links).
  ShardCoordinator(const net::Tree& tree, int numObjects,
                   ShardOptions options,
                   std::vector<FramedTransport*> links,
                   std::string transportName);

  /// Runs the handshake and drains `stream` epoch by epoch through the
  /// worker wave; returns the merged report. On failure every link is
  /// closed before the serve::Error propagates. One-shot: a second
  /// call throws std::logic_error (workers have exited).
  [[nodiscard]] ShardedReport serve(serve::RequestStream& stream);

  /// Merged cumulative loads (serve + update + migration) — the digest
  /// surface the identity tests compare against EpochServer::loads().
  [[nodiscard]] const core::LoadMap& loads() const noexcept {
    return loads_;
  }
  [[nodiscard]] const std::vector<serve::EpochRecord>& epochLog()
      const noexcept {
    return log_;
  }

 private:
  void handshake();
  /// Closes every link (workers see end-of-stream). Idempotent.
  void closeAll() noexcept;
  /// Decodes a worker frame expected to be `want`; an Error frame
  /// rethrows the shipped failure with the shard's attribution.
  [[nodiscard]] Frame expect(int shard, FrameType want,
                             std::uint64_t epoch);

  const net::Tree* tree_;
  int numObjects_;
  ShardOptions options_;
  std::vector<FramedTransport*> links_;
  std::string transportName_;
  core::LoadMap loads_;
  core::LoadMap serveLoads_;
  serve::DriftTrigger drift_;
  std::vector<serve::EpochRecord> log_;
  bool served_ = false;
};

}  // namespace hbn::shard
