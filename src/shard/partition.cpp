#include "hbn/shard/partition.h"

#include <stdexcept>

#include "hbn/util/rng.h"

namespace hbn::shard {

Partition::Partition(Kind kind, int shards, std::uint64_t seed,
                     int numObjects)
    : kind_(kind), shards_(shards), seed_(seed), numObjects_(numObjects) {
  if (shards < 1) {
    throw std::invalid_argument("Partition: shards >= 1");
  }
  if (numObjects < 0) {
    throw std::invalid_argument("Partition: numObjects >= 0");
  }
  blockSize_ = numObjects == 0 ? 1 : (numObjects + shards - 1) / shards;
}

int Partition::ownerOf(workload::ObjectId x) const noexcept {
  if (shards_ == 1) return 0;
  if (kind_ == Kind::Range) {
    const int owner = static_cast<int>(x) / blockSize_;
    return owner < shards_ ? owner : shards_ - 1;
  }
  // Seed-salted splitmix64: the golden-ratio stride decorrelates
  // adjacent ids before the mix, so consecutive hot objects land on
  // different shards even for small id ranges.
  std::uint64_t state =
      seed_ + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(x) + 1);
  return static_cast<int>(util::splitmix64(state) %
                          static_cast<std::uint64_t>(shards_));
}

const char* partitionKindName(Partition::Kind kind) noexcept {
  return kind == Partition::Kind::Hash ? "hash" : "range";
}

Partition::Kind parsePartitionKind(const std::string& name) {
  if (name == "hash") return Partition::Kind::Hash;
  if (name == "range") return Partition::Kind::Range;
  throw std::invalid_argument("unknown partition '" + name +
                              "'; available: hash range");
}

}  // namespace hbn::shard
