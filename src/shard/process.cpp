#include "hbn/shard/process.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>

#include "hbn/serve/error.h"
#include "hbn/shard/worker.h"

namespace hbn::shard {
namespace {

constexpr const char* kWorkerFlag = "--shard-worker-fd=";

class LoopbackCluster final : public ShardCluster {
 public:
  explicit LoopbackCluster(int workers) {
    links_.reserve(static_cast<std::size_t>(workers));
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      auto [coordEnd, workerEnd] = makeLoopbackPair();
      links_.push_back(
          std::make_unique<FramedTransport>(std::move(coordEnd)));
      threads_.emplace_back(
          [end = std::make_shared<FramedTransport>(std::move(workerEnd))] {
            try {
              runWorker(*end);
            } catch (...) {
              // Failures already crossed the wire as Error frames (or
              // the link is dead and the coordinator sees Peer); the
              // thread just winds down.
            }
          });
    }
  }

  ~LoopbackCluster() override {
    kill();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  std::vector<FramedTransport*> links() override {
    std::vector<FramedTransport*> out;
    out.reserve(links_.size());
    for (const auto& link : links_) out.push_back(link.get());
    return out;
  }

  void join() override {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  void kill() noexcept override {
    // Closing the coordinator ends wakes every worker thread out of
    // recv with end-of-stream; join() then collects them.
    for (const auto& link : links_) link->close();
  }

 private:
  std::vector<std::unique_ptr<FramedTransport>> links_;
  std::vector<std::thread> threads_;
};

/// Shared child-process bookkeeping for the fork and exec clusters.
class ProcessCluster : public ShardCluster {
 public:
  ~ProcessCluster() override { ProcessCluster::kill(); }

  std::vector<FramedTransport*> links() override {
    std::vector<FramedTransport*> out;
    out.reserve(links_.size());
    for (const auto& link : links_) out.push_back(link.get());
    return out;
  }

  void join() override {
    for (std::size_t i = 0; i < pids_.size(); ++i) {
      if (pids_[i] < 0) continue;
      int status = 0;
      const pid_t pid = pids_[i];
      pids_[i] = -1;
      if (::waitpid(pid, &status, 0) < 0) continue;
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
      kill();  // a bad worker fails the run; do not leave siblings
      if (WIFSIGNALED(status)) {
        throw serve::Error(serve::Stage::Peer, 0,
                           "worker " + std::to_string(i) +
                               " killed by signal " +
                               std::to_string(WTERMSIG(status)));
      }
      throw serve::Error(serve::Stage::Peer, 0,
                         "worker " + std::to_string(i) +
                             " exited with status " +
                             std::to_string(WEXITSTATUS(status)));
    }
  }

  void kill() noexcept override {
    for (std::size_t i = 0; i < pids_.size(); ++i) {
      if (pids_[i] < 0) continue;
      ::kill(pids_[i], SIGKILL);
      int status = 0;
      ::waitpid(pids_[i], &status, 0);
      pids_[i] = -1;
    }
    for (const auto& link : links_) link->close();
  }

 protected:
  std::vector<std::unique_ptr<FramedTransport>> links_;
  std::vector<pid_t> pids_;
};

class ForkCluster final : public ProcessCluster {
 public:
  explicit ForkCluster(int workers) {
    for (int w = 0; w < workers; ++w) {
      auto [parentFd, childFd] = makeSocketPair();
      const pid_t pid = ::fork();
      if (pid < 0) {
        ::close(parentFd);
        ::close(childFd);
        throw std::runtime_error(std::string("fork: ") +
                                 std::strerror(errno));
      }
      if (pid == 0) {
        // Child: drop the parent ends inherited so far and serve.
        ::close(parentFd);
        links_.clear();
        ::_exit(runWorkerProcess(childFd));
      }
      ::close(childFd);
      links_.push_back(std::make_unique<FramedTransport>(
          makeSocketChannel(parentFd)));
      pids_.push_back(pid);
    }
  }
};

class ExecCluster final : public ProcessCluster {
 public:
  explicit ExecCluster(int workers) {
    const std::string exe = currentExecutablePath();
    if (exe.empty()) {
      throw std::runtime_error(
          "shard: cannot resolve /proc/self/exe for worker spawn");
    }
    for (int w = 0; w < workers; ++w) {
      auto [parentFd, childFd] = makeSocketPair();
      // The child fd must survive exec; the parent end must not leak
      // into siblings.
      ::fcntl(parentFd, F_SETFD, FD_CLOEXEC);
      const pid_t pid = ::fork();
      if (pid < 0) {
        ::close(parentFd);
        ::close(childFd);
        throw std::runtime_error(std::string("fork: ") +
                                 std::strerror(errno));
      }
      if (pid == 0) {
        const std::string flag = kWorkerFlag + std::to_string(childFd);
        char* const args[] = {const_cast<char*>(exe.c_str()),
                              const_cast<char*>(flag.c_str()), nullptr};
        ::execv(exe.c_str(), args);
        ::_exit(127);  // exec failed
      }
      ::close(childFd);
      links_.push_back(std::make_unique<FramedTransport>(
          makeSocketChannel(parentFd)));
      pids_.push_back(pid);
    }
  }
};

}  // namespace

std::unique_ptr<ShardCluster> makeLoopbackCluster(int workers) {
  return std::make_unique<LoopbackCluster>(workers);
}

std::unique_ptr<ShardCluster> makeForkCluster(int workers) {
  return std::make_unique<ForkCluster>(workers);
}

std::unique_ptr<ShardCluster> makeExecCluster(int workers) {
  return std::make_unique<ExecCluster>(workers);
}

int maybeRunWorkerMain(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind(kWorkerFlag, 0) == 0) {
      const int fd = std::atoi(arg.substr(std::strlen(kWorkerFlag)).data());
      return runWorkerProcess(fd);
    }
  }
  return -1;
}

std::string currentExecutablePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace hbn::shard
