#include "hbn/workload/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "hbn/net/rooted.h"

namespace hbn::workload {
namespace {

void checkParams(const GenParams& params) {
  if (params.numObjects < 1) {
    throw std::invalid_argument("GenParams: numObjects >= 1");
  }
  if (params.requestsPerProcessor < 0) {
    throw std::invalid_argument("GenParams: requestsPerProcessor >= 0");
  }
  if (params.readFraction < 0.0 || params.readFraction > 1.0) {
    throw std::invalid_argument("GenParams: readFraction in [0,1]");
  }
}

// Adds `count` requests from `proc` to `x`, splitting into reads/writes by
// the read fraction. Uses expected counts with a randomised remainder so
// small request budgets still hit the target fraction on average.
void addSplit(Workload& w, ObjectId x, net::NodeId proc, Count count,
              double readFraction, util::Rng& rng) {
  if (count <= 0) return;
  const double expectedReads = static_cast<double>(count) * readFraction;
  Count reads = static_cast<Count>(expectedReads);
  const double frac = expectedReads - static_cast<double>(reads);
  if (rng.nextBool(frac)) ++reads;
  reads = std::min(reads, count);
  w.addReads(x, proc, reads);
  w.addWrites(x, proc, count - reads);
}

// Zipf CDF over numObjects ranks with exponent alpha.
std::vector<double> zipfWeights(int numObjects, double alpha) {
  std::vector<double> weights(static_cast<std::size_t>(numObjects));
  for (int i = 0; i < numObjects; ++i) {
    weights[static_cast<std::size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), alpha);
  }
  return weights;
}

}  // namespace

const char* profileName(Profile p) noexcept {
  switch (p) {
    case Profile::uniform:
      return "uniform";
    case Profile::zipf:
      return "zipf";
    case Profile::hotspot:
      return "hotspot";
    case Profile::clustered:
      return "clustered";
    case Profile::producerConsumer:
      return "producer-consumer";
    case Profile::adversarial:
      return "adversarial";
  }
  return "?";
}

Workload generate(Profile profile, const net::Tree& tree,
                  const GenParams& params, util::Rng& rng) {
  switch (profile) {
    case Profile::uniform:
      return generateUniform(tree, params, rng);
    case Profile::zipf:
      return generateZipf(tree, params, rng);
    case Profile::hotspot:
      return generateHotspot(tree, params, rng);
    case Profile::clustered:
      return generateClustered(tree, params, rng);
    case Profile::producerConsumer:
      return generateProducerConsumer(tree, params, rng);
    case Profile::adversarial:
      return generateAdversarial(tree, params, rng);
  }
  throw std::invalid_argument("generate: unknown profile");
}

Workload generateUniform(const net::Tree& tree, const GenParams& params,
                         util::Rng& rng) {
  checkParams(params);
  Workload w(params.numObjects, tree.nodeCount());
  for (const net::NodeId proc : tree.processors()) {
    for (Count i = 0; i < params.requestsPerProcessor; ++i) {
      const auto x = static_cast<ObjectId>(
          rng.nextBelow(static_cast<std::uint64_t>(params.numObjects)));
      addSplit(w, x, proc, 1, params.readFraction, rng);
    }
  }
  return w;
}

Workload generateZipf(const net::Tree& tree, const GenParams& params,
                      util::Rng& rng) {
  checkParams(params);
  const auto weights = zipfWeights(params.numObjects, params.zipfAlpha);
  Workload w(params.numObjects, tree.nodeCount());
  for (const net::NodeId proc : tree.processors()) {
    for (Count i = 0; i < params.requestsPerProcessor; ++i) {
      const auto x = static_cast<ObjectId>(rng.nextWeighted(weights));
      addSplit(w, x, proc, 1, params.readFraction, rng);
    }
  }
  return w;
}

Workload generateHotspot(const net::Tree& tree, const GenParams& params,
                         util::Rng& rng) {
  checkParams(params);
  const int hot = std::clamp(params.hotObjects, 1, params.numObjects);
  Workload w(params.numObjects, tree.nodeCount());
  for (const net::NodeId proc : tree.processors()) {
    for (Count i = 0; i < params.requestsPerProcessor; ++i) {
      ObjectId x = 0;
      if (rng.nextBool(params.hotFraction)) {
        x = static_cast<ObjectId>(
            rng.nextBelow(static_cast<std::uint64_t>(hot)));
      } else {
        x = static_cast<ObjectId>(
            rng.nextBelow(static_cast<std::uint64_t>(params.numObjects)));
      }
      addSplit(w, x, proc, 1, params.readFraction, rng);
    }
  }
  return w;
}

Workload generateClustered(const net::Tree& tree, const GenParams& params,
                           util::Rng& rng) {
  checkParams(params);
  Workload w(params.numObjects, tree.nodeCount());
  const net::RootedTree rooted(tree, tree.defaultRoot());

  // Partition processors by "home" subtree: pick a random home bus per
  // object; processors below it are local, others remote.
  const auto buses = tree.buses();
  const auto procs = tree.processors();
  std::vector<net::NodeId> local;
  std::vector<net::NodeId> remote;
  for (ObjectId x = 0; x < params.numObjects; ++x) {
    const net::NodeId home =
        buses.empty()
            ? tree.defaultRoot()
            : buses[static_cast<std::size_t>(
                  rng.nextBelow(static_cast<std::uint64_t>(buses.size())))];
    local.clear();
    remote.clear();
    for (const net::NodeId p : procs) {
      (rooted.isAncestorOf(home, p) ? local : remote).push_back(p);
    }
    if (local.empty()) local = remote;  // degenerate home: treat all as local
    // Distribute this object's share of each processor's budget.
    const Count perObject =
        std::max<Count>(1, params.requestsPerProcessor /
                               std::max(1, params.numObjects));
    for (const net::NodeId p : procs) {
      const bool isLocal =
          std::find(local.begin(), local.end(), p) != local.end();
      const double keep = isLocal ? params.localityBias
                                  : (1.0 - params.localityBias);
      Count count = 0;
      for (Count i = 0; i < perObject; ++i) {
        if (rng.nextBool(keep)) ++count;
      }
      addSplit(w, x, p, count, params.readFraction, rng);
    }
  }
  return w;
}

Workload generateProducerConsumer(const net::Tree& tree,
                                  const GenParams& params, util::Rng& rng) {
  checkParams(params);
  Workload w(params.numObjects, tree.nodeCount());
  const auto procs = tree.processors();
  const Count perObject = std::max<Count>(
      1, params.requestsPerProcessor / std::max(1, params.numObjects));
  for (ObjectId x = 0; x < params.numObjects; ++x) {
    const net::NodeId writer = procs[static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(procs.size())))];
    w.addWrites(x, writer, perObject);
    for (const net::NodeId p : procs) {
      if (p == writer) continue;
      // Consumers read with intensity scaled by readFraction.
      const auto reads = static_cast<Count>(
          std::llround(static_cast<double>(perObject) * params.readFraction));
      if (reads > 0) w.addReads(x, p, reads);
    }
  }
  return w;
}

namespace {

std::vector<net::NodeId> copyProcessors(const net::Tree& tree) {
  const auto procs = tree.processors();
  if (procs.empty()) {
    throw std::invalid_argument("stream generator: tree has no processors");
  }
  return {procs.begin(), procs.end()};
}

void checkStreamParams(const StreamParams& params) {
  if (params.numObjects < 1) {
    throw std::invalid_argument("StreamParams: numObjects >= 1");
  }
  if (params.readFraction < 0.0 || params.readFraction > 1.0) {
    throw std::invalid_argument("StreamParams: readFraction in [0,1]");
  }
  if (params.burstLength < 1) {
    throw std::invalid_argument("StreamParams: burstLength >= 1");
  }
  if (params.period < 1) {
    throw std::invalid_argument("StreamParams: period >= 1");
  }
  if (params.amplitude < 0.0 || params.amplitude > 1.0) {
    throw std::invalid_argument("StreamParams: amplitude in [0,1]");
  }
  if (params.phaseLength < 1) {
    throw std::invalid_argument("StreamParams: phaseLength >= 1");
  }
}

// Validated Zipf popularity weights for the skewed stream's alias table
// (validation must precede the table build, which rejects empty input
// with a less specific message).
std::vector<double> streamZipfWeights(const StreamParams& params) {
  checkStreamParams(params);
  return zipfWeights(params.numObjects, params.zipfAlpha);
}

// The per-block RNG seed: a SplitMix64 mix of the stream seed and the
// block index, so blocks are mutually independent and any block's RNG
// is reconstructible in O(1) — the seam seek() jumps through.
std::uint64_t blockSeed(std::uint64_t seed, std::uint64_t block) {
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * (block + 1);
  return util::splitmix64(state);
}

// Shared seek body: jump to the enclosing block start (beginBlock runs
// from next() at the boundary) and replay the intra-block prefix.
template <typename Stream>
void seekStream(Stream& stream, std::uint64_t& position,
                std::uint64_t target) {
  position = target - target % kStreamReseedBlock;
  while (position < target) (void)stream.next();
}

}  // namespace

SkewedStream::SkewedStream(const net::Tree& tree, const StreamParams& params,
                           std::uint64_t seed)
    : procs_(copyProcessors(tree)),
      popularity_(streamZipfWeights(params)),
      readFraction_(params.readFraction),
      seed_(seed),
      rng_(seed) {}

void SkewedStream::beginBlock() {
  rng_ = util::Rng(blockSeed(seed_, position_ / kStreamReseedBlock));
}

RequestEvent SkewedStream::next() {
  if (position_ % kStreamReseedBlock == 0) beginBlock();
  ++position_;
  // O(1) per event: Walker alias draw for the object, one bounded draw
  // for the origin (the former CDF binary search was O(log |X|) and
  // showed up beside the batched serving engine in e12 profiles).
  const auto rank = static_cast<ObjectId>(popularity_.sample(rng_));
  const net::NodeId origin = procs_[static_cast<std::size_t>(
      rng_.nextBelow(static_cast<std::uint64_t>(procs_.size())))];
  return RequestEvent{rank, origin, !rng_.nextBool(readFraction_)};
}

void SkewedStream::seek(std::uint64_t position) {
  seekStream(*this, position_, position);
}

BurstyStream::BurstyStream(const net::Tree& tree, const StreamParams& params,
                           std::uint64_t seed)
    : procs_(copyProcessors(tree)),
      numObjects_(params.numObjects),
      burstLength_(params.burstLength),
      readFraction_(params.readFraction),
      seed_(seed),
      rng_(seed) {
  checkStreamParams(params);
}

void BurstyStream::beginBlock() {
  rng_ = util::Rng(blockSeed(seed_, position_ / kStreamReseedBlock));
  remaining_ = 0;  // bursts never span a re-seed block
}

RequestEvent BurstyStream::next() {
  if (position_ % kStreamReseedBlock == 0) beginBlock();
  ++position_;
  if (remaining_ <= 0) {
    burstObject_ = static_cast<ObjectId>(
        rng_.nextBelow(static_cast<std::uint64_t>(numObjects_)));
    burstOrigin_ = procs_[static_cast<std::size_t>(
        rng_.nextBelow(static_cast<std::uint64_t>(procs_.size())))];
    remaining_ = burstLength_;
  }
  --remaining_;
  return RequestEvent{burstObject_, burstOrigin_,
                      !rng_.nextBool(readFraction_)};
}

void BurstyStream::seek(std::uint64_t position) {
  seekStream(*this, position_, position);
}

DiurnalStream::DiurnalStream(const net::Tree& tree,
                             const StreamParams& params, std::uint64_t seed)
    : procs_(copyProcessors(tree)),
      numObjects_(params.numObjects),
      period_(params.period),
      amplitude_(params.amplitude),
      readFraction_(params.readFraction),
      seed_(seed),
      rng_(seed) {
  checkStreamParams(params);
}

void DiurnalStream::beginBlock() {
  rng_ = util::Rng(blockSeed(seed_, position_ / kStreamReseedBlock));
}

RequestEvent DiurnalStream::next() {
  if (position_ % kStreamReseedBlock == 0) beginBlock();
  const double phase = static_cast<double>(position_ % period_) /
                       static_cast<double>(period_);
  ++position_;
  ObjectId object = 0;
  net::NodeId origin = net::kInvalidNode;
  if (rng_.nextBool(amplitude_)) {
    // Hot window (an eighth of each space) centred on the current phase,
    // wrapping; load migrates between regions over the day.
    const auto procWindow =
        std::max<std::uint64_t>(1, procs_.size() / 8);
    const auto objWindow = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(numObjects_) / 8);
    const auto procBase = static_cast<std::uint64_t>(
        phase * static_cast<double>(procs_.size()));
    const auto objBase = static_cast<std::uint64_t>(
        phase * static_cast<double>(numObjects_));
    origin = procs_[static_cast<std::size_t>(
        (procBase + rng_.nextBelow(procWindow)) % procs_.size())];
    object = static_cast<ObjectId>(
        (objBase + rng_.nextBelow(objWindow)) %
        static_cast<std::uint64_t>(numObjects_));
  } else {
    origin = procs_[static_cast<std::size_t>(
        rng_.nextBelow(static_cast<std::uint64_t>(procs_.size())))];
    object = static_cast<ObjectId>(
        rng_.nextBelow(static_cast<std::uint64_t>(numObjects_)));
  }
  return RequestEvent{object, origin, !rng_.nextBool(readFraction_)};
}

void DiurnalStream::seek(std::uint64_t position) {
  seekStream(*this, position_, position);
}

PhaseShiftStream::PhaseShiftStream(const net::Tree& tree,
                                   const StreamParams& params,
                                   std::uint64_t seed)
    : procs_(copyProcessors(tree)),
      popularity_(streamZipfWeights(params)),
      numObjects_(params.numObjects),
      burstLength_(params.burstLength),
      burstReadFraction_(params.readFraction),
      phaseLength_(params.phaseLength),
      seed_(seed),
      rng_(seed) {}

void PhaseShiftStream::beginBlock() {
  rng_ = util::Rng(blockSeed(seed_, position_ / kStreamReseedBlock));
  remaining_ = 0;  // bursts never span a re-seed block
}

RequestEvent PhaseShiftStream::next() {
  if (position_ % kStreamReseedBlock == 0) beginBlock();
  const int regime = regimeAt(position_, phaseLength_);
  const bool regimeStart = position_ % phaseLength_ == 0;
  ++position_;
  if (regimeStart) remaining_ = 0;  // never carry a burst across regimes
  if (regime == 2) {
    // Ping-pong regime: bursts pinned to one (object, origin) pair.
    if (remaining_ <= 0) {
      burstObject_ = static_cast<ObjectId>(
          rng_.nextBelow(static_cast<std::uint64_t>(numObjects_)));
      burstOrigin_ = procs_[static_cast<std::size_t>(
          rng_.nextBelow(static_cast<std::uint64_t>(procs_.size())))];
      remaining_ = burstLength_;
    }
    --remaining_;
    return RequestEvent{burstObject_, burstOrigin_,
                        !rng_.nextBool(burstReadFraction_)};
  }
  // Skew (0) and churn (1) share the Zipf popularity law and uniform
  // origins; only the read/write mix flips.
  const double readFraction =
      regime == 0 ? kSkewReadFraction : kChurnReadFraction;
  const auto object = static_cast<ObjectId>(popularity_.sample(rng_));
  const net::NodeId origin = procs_[static_cast<std::size_t>(
      rng_.nextBelow(static_cast<std::uint64_t>(procs_.size())))];
  return RequestEvent{object, origin, !rng_.nextBool(readFraction)};
}

void PhaseShiftStream::seek(std::uint64_t position) {
  seekStream(*this, position_, position);
}

Workload generateAdversarial(const net::Tree& tree, const GenParams& params,
                             util::Rng& rng) {
  checkParams(params);
  Workload w(params.numObjects, tree.nodeCount());
  const auto procs = tree.processors();
  for (ObjectId x = 0; x < params.numObjects; ++x) {
    // Two to four writers with heavy, nearly balanced write contention and
    // a sprinkling of reads elsewhere: maximises κ_x pressure on the
    // deletion and mapping steps.
    const int writers = 2 + static_cast<int>(rng.nextBelow(3));
    const Count weight =
        std::max<Count>(1, params.requestsPerProcessor) * 4;
    for (int i = 0; i < writers; ++i) {
      const net::NodeId p = procs[static_cast<std::size_t>(
          rng.nextBelow(static_cast<std::uint64_t>(procs.size())))];
      w.addWrites(x, p, weight + static_cast<Count>(rng.nextBelow(7)));
    }
    for (const net::NodeId p : procs) {
      if (rng.nextBool(0.3)) {
        w.addReads(x, p, 1 + static_cast<Count>(rng.nextBelow(4)));
      }
    }
  }
  return w;
}

}  // namespace hbn::workload
