// Workload generators: synthetic access patterns for the experiments.
//
// The paper evaluates nothing empirically; these generators provide the
// access-pattern families its motivation describes (global variables in a
// parallel program, pages of a virtual shared memory, WWW pages):
//
//   * uniform     — every processor accesses uniformly random objects,
//   * zipf        — object popularity follows a Zipf(α) law (WWW-like),
//   * hotspot     — a few hot objects receive most requests,
//   * clustered   — every object has a home subtree that issues most of
//                   its requests (the locality nibble exploits),
//   * producerConsumer — one writer per object, many readers (typical
//                   parallel-program sharing),
//   * adversarial — weights drawn to stress the deletion/mapping steps
//                   (heavy write contention concentrated on few leaves).
//
// All generators take a read fraction in [0,1]; each processor request is
// a read with that probability, a write otherwise.
#pragma once

#include <string>

#include "hbn/net/tree.h"
#include "hbn/util/alias.h"
#include "hbn/util/rng.h"
#include "hbn/workload/workload.h"

namespace hbn::workload {

/// Family selector for sweep harnesses.
enum class Profile {
  uniform,
  zipf,
  hotspot,
  clustered,
  producerConsumer,
  adversarial,
};

[[nodiscard]] const char* profileName(Profile p) noexcept;

/// Common generator knobs.
struct GenParams {
  int numObjects = 16;
  /// Requests issued by each processor (spread over objects).
  Count requestsPerProcessor = 64;
  /// Probability that an individual request is a read.
  double readFraction = 0.7;
  /// Zipf exponent (Profile::zipf only).
  double zipfAlpha = 0.9;
  /// Fraction of requests aimed at the hot set (Profile::hotspot only).
  double hotFraction = 0.8;
  /// Number of hot objects (Profile::hotspot only).
  int hotObjects = 2;
  /// Probability that a clustered request stays in the home subtree
  /// (Profile::clustered only).
  double localityBias = 0.9;
};

/// Generates a workload of the given profile over the processors of `tree`.
/// Only processor rows are populated; the result always passes
/// Workload::validateProcessorOnly(tree).
[[nodiscard]] Workload generate(Profile profile, const net::Tree& tree,
                                const GenParams& params, util::Rng& rng);

/// Uniform object choice, iid requests.
[[nodiscard]] Workload generateUniform(const net::Tree& tree,
                                       const GenParams& params,
                                       util::Rng& rng);

/// Zipf-popular objects.
[[nodiscard]] Workload generateZipf(const net::Tree& tree,
                                    const GenParams& params, util::Rng& rng);

/// Hot set of objects absorbing `hotFraction` of the traffic.
[[nodiscard]] Workload generateHotspot(const net::Tree& tree,
                                       const GenParams& params,
                                       util::Rng& rng);

/// Each object is homed at a random bus; requests from the home subtree
/// with probability `localityBias`.
[[nodiscard]] Workload generateClustered(const net::Tree& tree,
                                         const GenParams& params,
                                         util::Rng& rng);

/// One designated writer per object; all other processors only read.
[[nodiscard]] Workload generateProducerConsumer(const net::Tree& tree,
                                                const GenParams& params,
                                                util::Rng& rng);

/// Write-heavy contention concentrated on few random leaves per object;
/// stresses the κ_x-based machinery of steps 2 and 3.
[[nodiscard]] Workload generateAdversarial(const net::Tree& tree,
                                           const GenParams& params,
                                           util::Rng& rng);

// ---------------------------------------------------------------------------
// Request-stream generators.
//
// Where the matrix generators above produce aggregated frequencies, these
// produce an *online* stream of individual RequestEvents, one at a time,
// so request sequences of arbitrary length never materialise in memory.
// Each generator is deterministic from its seed; the serve layer wraps
// them into pull-based RequestStreams.
// ---------------------------------------------------------------------------

/// Knobs shared by the stream generators.
struct StreamParams {
  int numObjects = 1024;
  /// Probability that an individual request is a read.
  double readFraction = 0.9;
  /// skewed: Zipf exponent of the object popularity law.
  double zipfAlpha = 1.1;
  /// bursty: consecutive requests a burst pins to one (object, origin).
  int burstLength = 64;
  /// diurnal: requests per simulated day (one full rotation of the hot
  /// region over processors and objects).
  std::uint64_t period = 1 << 16;
  /// diurnal: fraction of traffic following the rotating hot region.
  double amplitude = 0.8;
  /// phase-shift: requests per regime before the stream switches to the
  /// next one (align to a multiple of the serving epoch so regime
  /// boundaries land on epoch boundaries).
  std::uint64_t phaseLength = 1 << 15;
};

/// Requests per RNG re-seed block. Every stream generator below derives
/// a fresh per-block RNG from (seed, blockIndex) at each multiple of
/// this count and resets its carry state (burst runs never span a block
/// boundary), so the generator state at any position is a function of
/// the seed and the position *within its block* alone. That is what
/// makes seek() O(kStreamReseedBlock) instead of O(position): jump to
/// the block start by arithmetic, replay at most one block. Checkpoint
/// restore of a multi-million-request stream stops being linear in the
/// served prefix (serve::skipRequests fast-forwards through this seam).
inline constexpr std::uint64_t kStreamReseedBlock = 4096;

/// WWW-like skew: object popularity Zipf(α), origins uniform over
/// processors. O(1) per event — a Walker alias table over the popularity
/// weights, so stream generation no longer competes with serving even
/// for millions of objects (the former binary-search CDF was O(log |X|)
/// per event).
class SkewedStream {
 public:
  SkewedStream(const net::Tree& tree, const StreamParams& params,
               std::uint64_t seed);
  [[nodiscard]] RequestEvent next();
  /// Repositions the stream so the next next() returns the event at
  /// 0-based `position` — O(kStreamReseedBlock), not O(position).
  void seek(std::uint64_t position);

 private:
  void beginBlock();

  std::vector<net::NodeId> procs_;
  util::AliasTable popularity_;  ///< Zipf(α) weights, O(1) sampling
  double readFraction_;
  std::uint64_t seed_;
  std::uint64_t position_ = 0;
  util::Rng rng_;
};

/// Bursty traffic: requests arrive in runs of `burstLength` pinned to one
/// (object, origin) pair before the stream jumps to the next pair.
class BurstyStream {
 public:
  BurstyStream(const net::Tree& tree, const StreamParams& params,
               std::uint64_t seed);
  [[nodiscard]] RequestEvent next();
  /// See SkewedStream::seek. Bursts never span re-seed blocks, so
  /// replaying from the block start reproduces the burst state exactly.
  void seek(std::uint64_t position);

 private:
  void beginBlock();

  std::vector<net::NodeId> procs_;
  int numObjects_;
  int burstLength_;
  double readFraction_;
  int remaining_ = 0;  ///< events left in the current burst
  ObjectId burstObject_ = 0;
  net::NodeId burstOrigin_ = net::kInvalidNode;
  std::uint64_t seed_;
  std::uint64_t position_ = 0;
  util::Rng rng_;
};

/// Diurnal traffic: a hot window over processors and objects rotates once
/// per `period` events (time-of-day shifting load between regions);
/// `amplitude` of the traffic follows the window, the rest is uniform.
class DiurnalStream {
 public:
  DiurnalStream(const net::Tree& tree, const StreamParams& params,
                std::uint64_t seed);
  [[nodiscard]] RequestEvent next();
  /// See SkewedStream::seek. The time-of-day phase is derived from the
  /// stream position, so seeking lands on the right hot region.
  void seek(std::uint64_t position);

 private:
  void beginBlock();

  std::vector<net::NodeId> procs_;
  int numObjects_;
  std::uint64_t period_;
  double amplitude_;
  double readFraction_;
  std::uint64_t seed_;
  std::uint64_t position_ = 0;
  util::Rng rng_;
};

/// Phase-shift traffic: the stream cycles through the kCycle regime
/// schedule, each slot held for exactly `phaseLength` requests —
///   0: read-heavy Zipf skew (favours replication),
///   1: write-heavy churn over the same Zipf popularity (favours few
///      copies),
///   2: ping-pong bursts pinned to one (object, origin) pair at the
///      base read fraction (favours the counter scheme's migration).
/// The schedule is [skew, skew, churn, burst]: skew is the workload's
/// steady state (half of every cycle, and long enough for replication
/// decisions to pay for themselves), periodically interrupted by a
/// churn phase and a burst phase that punish whoever over-committed to
/// it. No fixed policy is best across a whole cycle, which is exactly
/// the regime-tracking workload the adaptive meta-policy exists for.
/// Deterministic from the seed; regime boundaries land on multiples of
/// `phaseLength`, so sizing phaseLength to a multiple of the serving
/// epoch aligns them with epoch boundaries.
class PhaseShiftStream {
 public:
  static constexpr int kRegimes = 3;
  /// Regime schedule of one cycle, one slot per phaseLength requests.
  static constexpr int kCycle[] = {0, 0, 1, 2};
  static constexpr std::uint64_t kCycleSlots = 4;
  /// Read fraction of the skew regime (regime 0).
  static constexpr double kSkewReadFraction = 0.98;
  /// Read fraction of the churn regime (regime 1).
  static constexpr double kChurnReadFraction = 0.15;

  PhaseShiftStream(const net::Tree& tree, const StreamParams& params,
                   std::uint64_t seed);
  [[nodiscard]] RequestEvent next();
  /// See SkewedStream::seek. Regime schedule is position arithmetic;
  /// bursts span neither regime nor re-seed-block boundaries.
  void seek(std::uint64_t position);

  /// Regime index of the request at stream position `index` (0-based):
  /// pure arithmetic, exposed so tests can assert boundary placement.
  [[nodiscard]] static int regimeAt(std::uint64_t index,
                                    std::uint64_t phaseLength) noexcept {
    return kCycle[(index / phaseLength) % kCycleSlots];
  }

 private:
  void beginBlock();

  std::vector<net::NodeId> procs_;
  util::AliasTable popularity_;  ///< shared Zipf law of regimes 0 and 1
  int numObjects_;
  int burstLength_;
  double burstReadFraction_;  ///< base readFraction, used by regime 2
  std::uint64_t phaseLength_;
  std::uint64_t seed_;
  std::uint64_t position_ = 0;
  int remaining_ = 0;  ///< events left in the current regime-2 burst
  ObjectId burstObject_ = 0;
  net::NodeId burstOrigin_ = net::kInvalidNode;
  util::Rng rng_;
};

}  // namespace hbn::workload
