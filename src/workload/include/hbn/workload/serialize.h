// Text serialisation for workloads (round-trips exactly):
//
//   hbn-workload v1
//   dims <numObjects> <numNodes>
//   read <object> <node> <count>
//   write <object> <node> <count>
//
// Zero entries are omitted; read/write lines may appear in any order and
// accumulate.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "hbn/workload/workload.h"

namespace hbn::workload {

/// Writes the text representation.
void writeText(const Workload& load, std::ostream& os);

/// Convenience wrapper for writeText.
[[nodiscard]] std::string toText(const Workload& load);

/// Parses the text representation; throws std::invalid_argument on any
/// syntax or range error.
[[nodiscard]] Workload parseText(std::string_view text);

// ---------------------------------------------------------------------------
// Request traces (round-trip exactly, order-preserving):
//
//   hbn-trace v1
//   dims <numObjects> <numNodes>
//   r <object> <node>
//   w <object> <node>
//
// One line per request event, in arrival order. The reader is streaming —
// it pulls events one at a time off the istream, so traces of hundreds of
// millions of requests are served without ever materialising in memory.
// ---------------------------------------------------------------------------

/// Writes the trace header; follow with writeTraceEvent per event.
void writeTraceHeader(std::ostream& os, int numObjects, int numNodes);

/// Writes one event line.
void writeTraceEvent(std::ostream& os, const RequestEvent& event);

/// Incremental reader over an open istream. Validates the header in the
/// constructor and every event line against the declared dims; throws
/// std::invalid_argument (with a line number) on any syntax/range error.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in);

  [[nodiscard]] int numObjects() const noexcept { return numObjects_; }
  [[nodiscard]] int numNodes() const noexcept { return numNodes_; }

  /// Reads the next event into `out`; false once the trace is exhausted.
  [[nodiscard]] bool next(RequestEvent& out);

 private:
  std::istream* in_;
  int numObjects_ = 0;
  int numNodes_ = 0;
  std::uint64_t line_ = 2;  ///< last header line; event lines count from 3
  std::string buffer_;      ///< reused per line, no per-event allocation
};

}  // namespace hbn::workload
