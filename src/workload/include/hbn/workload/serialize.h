// Text serialisation for workloads (round-trips exactly):
//
//   hbn-workload v1
//   dims <numObjects> <numNodes>
//   read <object> <node> <count>
//   write <object> <node> <count>
//
// Zero entries are omitted; read/write lines may appear in any order and
// accumulate.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "hbn/workload/workload.h"

namespace hbn::workload {

/// Writes the text representation.
void writeText(const Workload& load, std::ostream& os);

/// Convenience wrapper for writeText.
[[nodiscard]] std::string toText(const Workload& load);

/// Parses the text representation; throws std::invalid_argument on any
/// syntax or range error.
[[nodiscard]] Workload parseText(std::string_view text);

}  // namespace hbn::workload
