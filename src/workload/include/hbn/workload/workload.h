// Access-frequency matrices h_r, h_w : P × X → N.
//
// A Workload stores, per shared object and per tree node, the number of
// read and write requests that node issues. In the hierarchical bus model
// only processors (leaves) issue requests; the matrix is nevertheless
// indexed by all nodes because the nibble strategy operates on the full
// tree (inner nodes simply carry zero frequencies), and because the
// underlying FOCS'97 machinery is defined for general trees.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hbn/net/tree.h"

namespace hbn::workload {

using ObjectId = std::int32_t;
using Count = std::int64_t;

/// One online request event: node `origin` issues a read or write to
/// `object`. This is the unit of the streaming layers — request-stream
/// generators produce it, traces serialise it, and the dynamic/serve
/// modules consume it.
struct RequestEvent {
  ObjectId object = 0;
  net::NodeId origin = net::kInvalidNode;
  bool isWrite = false;
};

/// Dense read/write frequency matrix with cached per-object totals.
class Workload {
 public:
  /// Creates an all-zero workload over `numObjects` objects and
  /// `numNodes` tree nodes.
  Workload(int numObjects, int numNodes);

  [[nodiscard]] int numObjects() const noexcept { return numObjects_; }
  [[nodiscard]] int numNodes() const noexcept { return numNodes_; }

  [[nodiscard]] Count reads(ObjectId x, net::NodeId v) const {
    return reads_[index(x, v)];
  }
  [[nodiscard]] Count writes(ObjectId x, net::NodeId v) const {
    return writes_[index(x, v)];
  }
  /// h(v) = h_r(v,x) + h_w(v,x), the paper's node weight for object x.
  [[nodiscard]] Count total(ObjectId x, net::NodeId v) const {
    return reads(x, v) + writes(x, v);
  }

  void addReads(ObjectId x, net::NodeId v, Count count);
  void addWrites(ObjectId x, net::NodeId v, Count count);
  void setReads(ObjectId x, net::NodeId v, Count count);
  void setWrites(ObjectId x, net::NodeId v, Count count);

  /// κ_x — the write contention of object x (Σ_v h_w(v,x)).
  [[nodiscard]] Count objectWrites(ObjectId x) const {
    return writeTotals_[checkObject(x)];
  }
  /// Σ_v h_r(v,x).
  [[nodiscard]] Count objectReads(ObjectId x) const {
    return readTotals_[checkObject(x)];
  }
  /// h_x — total number of requests to object x.
  [[nodiscard]] Count objectTotal(ObjectId x) const {
    return objectReads(x) + objectWrites(x);
  }

  /// Sum of all requests across objects.
  [[nodiscard]] Count grandTotal() const;

  /// Maximum write contention κ_max over all objects.
  [[nodiscard]] Count maxWriteContention() const;

  /// Read row views for tight inner loops.
  [[nodiscard]] std::span<const Count> readRow(ObjectId x) const {
    checkObject(x);
    return {reads_.data() + static_cast<std::size_t>(x) *
                                static_cast<std::size_t>(numNodes_),
            static_cast<std::size_t>(numNodes_)};
  }
  [[nodiscard]] std::span<const Count> writeRow(ObjectId x) const {
    checkObject(x);
    return {writes_.data() + static_cast<std::size_t>(x) *
                                 static_cast<std::size_t>(numNodes_),
            static_cast<std::size_t>(numNodes_)};
  }

  /// Throws std::invalid_argument if any non-processor node of `tree` has
  /// a nonzero frequency, or if the node dimension does not match.
  void validateProcessorOnly(const net::Tree& tree) const;

 private:
  std::size_t index(ObjectId x, net::NodeId v) const;
  ObjectId checkObject(ObjectId x) const;

  int numObjects_;
  int numNodes_;
  std::vector<Count> reads_;
  std::vector<Count> writes_;
  std::vector<Count> readTotals_;
  std::vector<Count> writeTotals_;
};

}  // namespace hbn::workload
