#include "hbn/workload/workload.h"

#include <algorithm>
#include <stdexcept>

namespace hbn::workload {

Workload::Workload(int numObjects, int numNodes)
    : numObjects_(numObjects), numNodes_(numNodes) {
  if (numObjects < 1 || numNodes < 1) {
    throw std::invalid_argument("Workload: positive dimensions required");
  }
  const auto cells = static_cast<std::size_t>(numObjects) *
                     static_cast<std::size_t>(numNodes);
  reads_.assign(cells, 0);
  writes_.assign(cells, 0);
  readTotals_.assign(static_cast<std::size_t>(numObjects), 0);
  writeTotals_.assign(static_cast<std::size_t>(numObjects), 0);
}

std::size_t Workload::index(ObjectId x, net::NodeId v) const {
  checkObject(x);
  if (v < 0 || v >= numNodes_) {
    throw std::out_of_range("Workload: node id out of range");
  }
  return static_cast<std::size_t>(x) * static_cast<std::size_t>(numNodes_) +
         static_cast<std::size_t>(v);
}

ObjectId Workload::checkObject(ObjectId x) const {
  if (x < 0 || x >= numObjects_) {
    throw std::out_of_range("Workload: object id out of range");
  }
  return x;
}

void Workload::addReads(ObjectId x, net::NodeId v, Count count) {
  if (count < 0) throw std::invalid_argument("addReads: negative count");
  reads_[index(x, v)] += count;
  readTotals_[static_cast<std::size_t>(x)] += count;
}

void Workload::addWrites(ObjectId x, net::NodeId v, Count count) {
  if (count < 0) throw std::invalid_argument("addWrites: negative count");
  writes_[index(x, v)] += count;
  writeTotals_[static_cast<std::size_t>(x)] += count;
}

void Workload::setReads(ObjectId x, net::NodeId v, Count count) {
  if (count < 0) throw std::invalid_argument("setReads: negative count");
  const std::size_t i = index(x, v);
  readTotals_[static_cast<std::size_t>(x)] += count - reads_[i];
  reads_[i] = count;
}

void Workload::setWrites(ObjectId x, net::NodeId v, Count count) {
  if (count < 0) throw std::invalid_argument("setWrites: negative count");
  const std::size_t i = index(x, v);
  writeTotals_[static_cast<std::size_t>(x)] += count - writes_[i];
  writes_[i] = count;
}

Count Workload::grandTotal() const {
  Count total = 0;
  for (ObjectId x = 0; x < numObjects_; ++x) {
    total += objectTotal(x);
  }
  return total;
}

Count Workload::maxWriteContention() const {
  Count best = 0;
  for (Count w : writeTotals_) best = std::max(best, w);
  return best;
}

void Workload::validateProcessorOnly(const net::Tree& tree) const {
  if (tree.nodeCount() != numNodes_) {
    throw std::invalid_argument("Workload: node dimension mismatch");
  }
  for (ObjectId x = 0; x < numObjects_; ++x) {
    for (net::NodeId v = 0; v < numNodes_; ++v) {
      if (!tree.isProcessor(v) && total(x, v) != 0) {
        throw std::invalid_argument(
            "Workload: non-processor node has nonzero frequency");
      }
    }
  }
}

}  // namespace hbn::workload
