#include "hbn/workload/serialize.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hbn::workload {

namespace {

void appendInt(std::string& out, std::int64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, ptr);
}

}  // namespace

std::string toText(const Workload& load) {
  // Built with to_chars into one reserved string rather than through an
  // ostream: rendering is the dominant cost of an epoch-boundary
  // checkpoint (hbn/serve/checkpoint.h), and per-value operator<< was
  // most of it. The bytes produced are identical to the ostream form.
  std::string out;
  out.reserve(64 + static_cast<std::size_t>(load.numObjects()) *
                       static_cast<std::size_t>(load.numNodes()) * 16);
  out += "hbn-workload v1\ndims ";
  appendInt(out, load.numObjects());
  out += ' ';
  appendInt(out, load.numNodes());
  out += '\n';
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    for (net::NodeId v = 0; v < load.numNodes(); ++v) {
      if (load.reads(x, v) > 0) {
        out += "read ";
        appendInt(out, x);
        out += ' ';
        appendInt(out, v);
        out += ' ';
        appendInt(out, load.reads(x, v));
        out += '\n';
      }
      if (load.writes(x, v) > 0) {
        out += "write ";
        appendInt(out, x);
        out += ' ';
        appendInt(out, v);
        out += ' ';
        appendInt(out, load.writes(x, v));
        out += '\n';
      }
    }
  }
  return out;
}

void writeText(const Workload& load, std::ostream& os) { os << toText(load); }

Workload parseText(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "hbn-workload v1") {
    throw std::invalid_argument(
        "parseText: missing 'hbn-workload v1' header");
  }
  if (!std::getline(in, line)) {
    throw std::invalid_argument("parseText: missing dims line");
  }
  std::istringstream dims{line};
  std::string keyword;
  int numObjects = 0;
  int numNodes = 0;
  if (!(dims >> keyword >> numObjects >> numNodes) || keyword != "dims") {
    throw std::invalid_argument("parseText: malformed dims line");
  }
  Workload load(numObjects, numNodes);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    ObjectId x = 0;
    net::NodeId v = 0;
    Count count = 0;
    if (!(ls >> keyword >> x >> v >> count)) {
      throw std::invalid_argument("parseText: malformed entry line");
    }
    if (keyword == "read") {
      load.addReads(x, v, count);
    } else if (keyword == "write") {
      load.addWrites(x, v, count);
    } else {
      throw std::invalid_argument("parseText: unknown keyword '" + keyword +
                                  "'");
    }
  }
  return load;
}

void writeTraceHeader(std::ostream& os, int numObjects, int numNodes) {
  if (numObjects < 1 || numNodes < 1) {
    throw std::invalid_argument("writeTraceHeader: positive dims");
  }
  os << "hbn-trace v1\ndims " << numObjects << ' ' << numNodes << '\n';
}

void writeTraceEvent(std::ostream& os, const RequestEvent& event) {
  os << (event.isWrite ? 'w' : 'r') << ' ' << event.object << ' '
     << event.origin << '\n';
}

namespace {

[[noreturn]] void traceFail(std::uint64_t line, const std::string& what) {
  throw std::invalid_argument("trace line " + std::to_string(line) + ": " +
                              what);
}

/// Parses a base-10 int32 starting at text[pos] (after mandatory spaces),
/// advancing pos past it; rejects anything std::from_chars would not
/// consume entirely up to the next space or end of line.
std::int32_t parseTraceInt(const std::string& text, std::size_t& pos,
                           std::uint64_t line) {
  while (pos < text.size() && text[pos] == ' ') ++pos;
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  std::int32_t value = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin ||
      (ptr != end && *ptr != ' ')) {
    traceFail(line, "malformed integer in '" + text + "'");
  }
  pos = static_cast<std::size_t>(ptr - text.data());
  return value;
}

}  // namespace

TraceReader::TraceReader(std::istream& in) : in_(&in) {
  std::string line;
  if (!std::getline(in, line) || line != "hbn-trace v1") {
    traceFail(1, "missing 'hbn-trace v1' header");
  }
  if (!std::getline(in, line)) {
    traceFail(2, "missing dims line (truncated trace?)");
  }
  std::istringstream dims{line};
  std::string keyword;
  if (!(dims >> keyword >> numObjects_ >> numNodes_) || keyword != "dims" ||
      numObjects_ < 1 || numNodes_ < 1) {
    traceFail(2, "malformed dims line '" + line + "'");
  }
}

bool TraceReader::next(RequestEvent& out) {
  // Hand-rolled line parse (no istringstream): this is the per-request
  // hot path when serving multi-million-event trace files.
  while (std::getline(*in_, buffer_)) {
    ++line_;
    if (buffer_.empty()) continue;
    const char kind = buffer_[0];
    if (kind != 'r' && kind != 'w') {
      traceFail(line_, "expected 'r' or 'w', got '" + buffer_ + "'");
    }
    if (buffer_.size() < 2 || buffer_[1] != ' ') {
      traceFail(line_, "expected ' ' after the r/w keyword");
    }
    std::size_t pos = 1;
    const std::int32_t object = parseTraceInt(buffer_, pos, line_);
    const std::int32_t node = parseTraceInt(buffer_, pos, line_);
    while (pos < buffer_.size() && buffer_[pos] == ' ') ++pos;
    if (pos != buffer_.size()) {
      traceFail(line_, "trailing content in '" + buffer_ + "'");
    }
    if (object < 0 || object >= numObjects_) {
      traceFail(line_, "object id out of range");
    }
    if (node < 0 || node >= numNodes_) {
      traceFail(line_, "node id out of range");
    }
    out = RequestEvent{object, node, kind == 'w'};
    return true;
  }
  // Distinguish a clean end of trace from a failed read: bad() means
  // the underlying stream lost data (I/O error), which would otherwise
  // masquerade as a short-but-valid trace.
  if (in_->bad()) {
    throw std::runtime_error("trace I/O error after line " +
                             std::to_string(line_));
  }
  return false;
}

}  // namespace hbn::workload
