#include "hbn/workload/serialize.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hbn::workload {

void writeText(const Workload& load, std::ostream& os) {
  os << "hbn-workload v1\n";
  os << "dims " << load.numObjects() << ' ' << load.numNodes() << '\n';
  for (ObjectId x = 0; x < load.numObjects(); ++x) {
    for (net::NodeId v = 0; v < load.numNodes(); ++v) {
      if (load.reads(x, v) > 0) {
        os << "read " << x << ' ' << v << ' ' << load.reads(x, v) << '\n';
      }
      if (load.writes(x, v) > 0) {
        os << "write " << x << ' ' << v << ' ' << load.writes(x, v) << '\n';
      }
    }
  }
}

std::string toText(const Workload& load) {
  std::ostringstream oss;
  writeText(load, oss);
  return oss.str();
}

Workload parseText(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "hbn-workload v1") {
    throw std::invalid_argument(
        "parseText: missing 'hbn-workload v1' header");
  }
  if (!std::getline(in, line)) {
    throw std::invalid_argument("parseText: missing dims line");
  }
  std::istringstream dims{line};
  std::string keyword;
  int numObjects = 0;
  int numNodes = 0;
  if (!(dims >> keyword >> numObjects >> numNodes) || keyword != "dims") {
    throw std::invalid_argument("parseText: malformed dims line");
  }
  Workload load(numObjects, numNodes);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    ObjectId x = 0;
    net::NodeId v = 0;
    Count count = 0;
    if (!(ls >> keyword >> x >> v >> count)) {
      throw std::invalid_argument("parseText: malformed entry line");
    }
    if (keyword == "read") {
      load.addReads(x, v, count);
    } else if (keyword == "write") {
      load.addWrites(x, v, count);
    } else {
      throw std::invalid_argument("parseText: unknown keyword '" + keyword +
                                  "'");
    }
  }
  return load;
}

}  // namespace hbn::workload
