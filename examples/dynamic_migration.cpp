// Dynamic scenario: a parallel program whose hot shared objects migrate
// between program phases. The online tree strategy (extension module)
// adapts by replicating toward readers and invalidating on writes; we
// compare its realised congestion with the offline static bound and with
// a static extended-nibble placement computed in hindsight.
#include <iostream>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/dynamic/harness.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/workload.h"

int main() {
  using namespace hbn;
  util::Rng rng(42);

  const net::Tree tree = net::makeClusterNetwork(4, 4);
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const auto procs = tree.processors();
  constexpr int kObjects = 8;

  // Three program phases; in each phase every object has one writer and a
  // reader camp in a different cluster.
  std::vector<dynamic::Request> requests;
  workload::Workload aggregated(kObjects, tree.nodeCount());
  for (int phase = 0; phase < 3; ++phase) {
    for (workload::ObjectId x = 0; x < kObjects; ++x) {
      const net::NodeId writer = procs[static_cast<std::size_t>(
          rng.nextBelow(procs.size()))];
      const net::NodeId reader = procs[static_cast<std::size_t>(
          rng.nextBelow(procs.size()))];
      for (int round = 0; round < 12; ++round) {
        for (int r = 0; r < 4; ++r) {
          requests.push_back(dynamic::Request{x, reader, false});
          aggregated.addReads(x, reader, 1);
        }
        requests.push_back(dynamic::Request{x, writer, true});
        aggregated.addWrites(x, writer, 1);
      }
    }
  }

  util::Table table({"threshold D", "online congestion", "offline LB",
                     "ratio", "replications", "invalidations"});
  for (const core::Count threshold : {1, 2, 4, 8}) {
    dynamic::OnlineOptions options;
    options.replicationThreshold = threshold;
    const auto result =
        dynamic::runCompetitive(rooted, kObjects, requests, options);
    table.addRow({std::to_string(threshold),
                  util::formatDouble(result.onlineCongestion, 1),
                  util::formatDouble(result.offlineLowerBound, 1),
                  util::formatDouble(result.ratio, 2),
                  std::to_string(result.replications),
                  std::to_string(result.invalidations)});
  }
  table.print(std::cout);

  // Static hindsight placement for reference.
  const auto hindsight = core::extendedNibble(tree, aggregated);
  std::cout << "\nstatic extended-nibble on the aggregated frequencies: "
            << "congestion " << hindsight.report.congestionFinal
            << " (the online strategy cannot know the phases in advance "
               "and pays the adaptation cost)\n";
  return 0;
}
