// SCI cluster scenario: a network of workstations built from SCI ringlets
// (the paper's Figure 1), modelled as a hierarchical bus network
// (Figure 2). Shared virtual-memory pages are placed with the
// extended-nibble strategy and the induced traffic is pushed through the
// store-and-forward simulator to compare achievable delivery times.
#include <iostream>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/sci/ring_network.h"
#include "hbn/sci/transactions.h"
#include "hbn/sim/simulator.h"
#include "hbn/util/rng.h"
#include "hbn/workload/generators.h"

int main() {
  using namespace hbn;
  util::Rng rng(2000);

  // --- 1. Hardware: a top-level SCI ring connecting four department
  // ringlets of six workstations each; ringlets run at 4 units, the
  // inter-ring switches at 2, workstation adapters at 1.
  sci::RingNetworkBuilder rings;
  const sci::RingId backbone = rings.addRing(sci::kInvalidRing, 8.0, 1.0);
  rings.addProcessor(backbone);  // a file server on the backbone
  for (int dept = 0; dept < 4; ++dept) {
    const sci::RingId ringlet = rings.addRing(backbone, 4.0, 2.0);
    for (int ws = 0; ws < 6; ++ws) {
      rings.addProcessor(ringlet);
    }
  }
  const sci::RingNetwork network = rings.build();
  const sci::BusView view = sci::toBusNetwork(network);
  std::cout << "SCI cluster: " << network.ringCount() << " ringlets, "
            << network.processorCount() << " workstations -> bus tree with "
            << view.tree.busCount() << " buses / "
            << view.tree.processorCount() << " processors\n\n";

  // --- 2. Workload: virtual shared memory pages with department
  // locality (each page is mostly touched inside one ringlet).
  workload::GenParams params;
  params.numObjects = 32;           // shared pages
  params.requestsPerProcessor = 64;
  params.readFraction = 0.8;
  params.localityBias = 0.85;
  const workload::Workload pages =
      workload::generateClustered(view.tree, params, rng);

  // --- 3. Place pages with the extended-nibble strategy.
  const auto result = core::extendedNibble(view.tree, pages);
  const net::RootedTree rooted(view.tree, view.tree.defaultRoot());
  const double lb = core::analyticLowerBound(rooted, pages).congestion;
  std::cout << "extended-nibble congestion: " << result.report.congestionFinal
            << "  (lower bound " << lb << ", ratio "
            << result.report.congestionFinal / lb << ")\n";

  // --- 4. Check the ring-level view: the same unicast traffic produces
  // identical congestion on the real ring hardware model.
  sci::TransactionAccounting ringAcc(network);
  for (workload::ObjectId x = 0; x < pages.numObjects(); ++x) {
    for (const core::Copy& copy : result.final.objects[x].copies) {
      for (const core::RequestShare& share : copy.served) {
        // Map bus-tree leaf ids back to SCI processor ids.
        sci::ProcId from = -1;
        sci::ProcId to = -1;
        for (sci::ProcId p = 0; p < network.processorCount(); ++p) {
          if (view.processorNode[static_cast<std::size_t>(p)] ==
              share.origin) {
            from = p;
          }
          if (view.processorNode[static_cast<std::size_t>(p)] ==
              copy.location) {
            to = p;
          }
        }
        ringAcc.addTransactions(from, to, share.total());
      }
    }
  }
  std::cout << "ring-level congestion of the service traffic: "
            << ringAcc.congestion() << "\n";

  // --- 5. Deliver the full message set through the simulator.
  const sim::SimResult sim =
      sim::simulatePlacement(rooted, pages, result.final);
  std::cout << "\nsimulated delivery: makespan=" << sim.makespan
            << " steps for " << sim.totalTasks
            << " unit transmissions (congestion=" << sim.congestion
            << ", dilation=" << sim.dilation << ")\n"
            << "makespan / congestion = "
            << static_cast<double>(sim.makespan) / sim.congestion << "\n";
  return 0;
}
