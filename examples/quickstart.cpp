// Quickstart: build a hierarchical bus network, describe shared-object
// access frequencies, run the extended-nibble strategy, and inspect the
// resulting placement and congestion.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "hbn/core/extended_nibble.h"
#include "hbn/core/lower_bound.h"
#include "hbn/net/serialize.h"
#include "hbn/net/tree.h"
#include "hbn/workload/workload.h"

int main() {
  using namespace hbn;

  // --- 1. The network: two buses under a root bus, three processors each
  // (a small NOW built from two SCI ringlets). Leaf switches have
  // bandwidth 1 — the paper's "slowest part of the system".
  net::TreeBuilder builder;
  const net::NodeId root = builder.addBus(/*bandwidth=*/8.0);
  std::vector<net::NodeId> procs;
  for (int cluster = 0; cluster < 2; ++cluster) {
    const net::NodeId bus = builder.addBus(/*bandwidth=*/4.0);
    builder.connect(root, bus, /*bandwidth=*/2.0);
    for (int i = 0; i < 3; ++i) {
      const net::NodeId p = builder.addProcessor();
      builder.connect(bus, p, /*bandwidth=*/1.0);
      procs.push_back(p);
    }
  }
  const net::Tree tree = builder.build();
  std::cout << "Network (" << tree.processorCount() << " processors, "
            << tree.busCount() << " buses):\n"
            << net::toDot(tree) << "\n";

  // --- 2. The workload: two shared objects. Object 0 is a global
  // counter written by everybody; object 1 is a config page read
  // everywhere but maintained by one processor.
  workload::Workload load(/*numObjects=*/2, tree.nodeCount());
  for (const net::NodeId p : procs) {
    load.addWrites(0, p, 10);
    load.addReads(0, p, 5);
    load.addReads(1, p, 40);
  }
  load.addWrites(1, procs.front(), 8);

  // --- 3. Run the strategy.
  const core::ExtendedNibbleResult result = core::extendedNibble(tree, load);

  std::cout << "Placement (per object, processor ids holding copies):\n";
  for (workload::ObjectId x = 0; x < load.numObjects(); ++x) {
    std::cout << "  object " << x << " -> {";
    bool first = true;
    for (const net::NodeId v : result.final.objects[x].locations()) {
      std::cout << (first ? "" : ", ") << v;
      first = false;
    }
    std::cout << "}  (kappa_x = " << load.objectWrites(x) << ")\n";
  }

  // --- 4. Quality: congestion against the certified lower bound.
  const net::RootedTree rooted(tree, tree.defaultRoot());
  const double lowerBound = core::analyticLowerBound(rooted, load).congestion;
  std::cout << "\ncongestion after step 1 (nibble):   "
            << result.report.congestionNibble
            << "\ncongestion after step 2 (deletion): "
            << result.report.congestionModified
            << "\ncongestion after step 3 (mapping):  "
            << result.report.congestionFinal
            << "\ncertified lower bound:              " << lowerBound
            << "\nratio (Theorem 4.3 guarantees <=7): "
            << result.report.congestionFinal / lowerBound << "\n";
  return 0;
}
