// Web-cache scenario: WWW pages (the paper's third motivating object
// class) with Zipf popularity on a provider's distribution tree.
// Compares the extended-nibble placement against the classic baselines
// and shows where each strategy breaks down.
#include <iostream>

#include "hbn/core/load.h"
#include "hbn/core/lower_bound.h"
#include "hbn/engine/registry.h"
#include "hbn/net/generators.h"
#include "hbn/util/rng.h"
#include "hbn/util/stats.h"
#include "hbn/util/table.h"
#include "hbn/workload/generators.h"

int main() {
  using namespace hbn;
  util::Rng rng(1999);

  // A content provider's distribution hierarchy: 4-ary, three levels of
  // switches, fat-tree bandwidths (higher levels are faster).
  net::BandwidthModel bw;
  bw.fatTree = true;
  const net::Tree tree = net::makeKaryTree(4, 3, bw);
  std::cout << "Distribution tree: " << tree.processorCount()
            << " edge caches, " << tree.busCount() << " switches\n\n";

  // Pages: Zipf-popular, mostly read, occasionally updated at the origin.
  workload::GenParams params;
  params.numObjects = 64;
  params.requestsPerProcessor = 50;
  params.readFraction = 0.95;
  params.zipfAlpha = 1.0;
  const workload::Workload pages = workload::generateZipf(tree, params, rng);

  const net::RootedTree rooted(tree, tree.defaultRoot());
  const double lb = core::analyticLowerBound(rooted, pages).congestion;

  util::Table table({"strategy", "congestion", "vs lower bound",
                     "total load", "copies"});
  engine::Context ctx;
  ctx.seed = 1999;
  for (const char* spec :
       {"extended-nibble", "best-single-copy", "weighted-median",
        "random-single-copy", "full-replication"}) {
    const auto strategy = engine::StrategyRegistry::global().create(spec);
    const core::Placement placement = strategy->place(tree, pages, ctx);
    const core::LoadMap loads = core::computeLoad(rooted, placement);
    long copies = 0;
    for (const auto& object : placement.objects) {
      copies += static_cast<long>(object.locations().size());
    }
    table.addRow({spec, util::formatDouble(loads.congestion(tree), 1),
                  util::formatDouble(loads.congestion(tree) / lb, 2),
                  std::to_string(loads.totalLoad()), std::to_string(copies)});
  }

  table.print(std::cout);
  std::cout << "\nRead-heavy Zipf traffic rewards replication of hot pages "
               "near their readers;\nsingle-copy placements melt the "
               "switch above the chosen cache, while full\nreplication "
               "pays update broadcasts on every page write. The "
               "extended-nibble\nplacement replicates exactly where read "
               "volume justifies the write cost.\n";
  return 0;
}
